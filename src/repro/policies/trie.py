"""Trie-style shared-prefix caching with adaptive per-level budgets.

In an n-way topology the cached tuples factor naturally into a shallow
trie: the first level branches on the *stream* a tuple arrived on, the
second on its join-attribute *value*.  Every query edge a stream
participates in probes the same ``(stream, value)`` node, so the benefit
of keeping that node is shared by all of them — the multi-join analogue
of shared prefixes in a cache trie.  :class:`TrieCachePolicy` exploits
both consequences:

* **Shared-prefix scoring.**  All candidate tuples sitting under one
  ``(stream, value)`` node share a single benefit computation per step
  (memoized, cleared when the step advances).  With stream models in the
  context the node benefit is the Appendix-C HEEB sum over the stream's
  partners (:func:`repro.core.heeb.heeb_join`); without models it falls
  back to the observed partner-frequency of the value, maintained
  incrementally the way PROB keeps its counts.

* **Adaptive per-level budgets.**  The cache capacity is split into
  per-stream keep budgets.  Each eviction round measures, per level, the
  best score that was still evicted — the level's *cutoff*, the same
  quantity the scored policies publish as ``scores.cutoff`` — and an
  exponential moving average of those cutoffs re-weights the budgets:
  levels whose evicted tuples were valuable grow, levels evicting junk
  shrink, subject to a minimum share floor so no stream is starved
  outright.  Budgets are reported through the ``trie.budget.<stream>``
  series.

The policy is written against the partner-aware
:class:`~repro.policies.base.PolicyContext` surface
(:meth:`~repro.policies.base.PolicyContext.partners_of`,
:meth:`~repro.policies.base.PolicyContext.model_for`), so the binary
join and the caching problem are served as the 1-partner and 0-partner
degenerate cases of the same code path.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.heeb import heeb_cache, heeb_join
from ..core.lifetime import LExp, LifetimeEstimator
from ..core.tuples import StreamTuple
from .base import PolicyContext, ReplacementPolicy

__all__ = ["TrieCachePolicy"]


class TrieCachePolicy(ReplacementPolicy):
    """Shared-prefix trie caching with adaptive per-level budgets.

    Parameters
    ----------
    estimator:
        Lifetime estimator for the model-aware node benefit (defaults to
        ``LExp(8.0)``); only consulted when the context carries stream
        models.
    horizon:
        Look-ahead truncation for the HEEB sums.
    beta:
        EMA weight of the newest per-level cutoff (0 < beta <= 1).
        Higher values re-allocate budgets faster.
    min_share:
        Floor on any level's budget share, as a fraction of an equal
        split (0 <= min_share <= 1).  ``0.1`` means no stream's budget
        drops below 10% of ``cache_size / n_levels``.
    """

    name = "TRIE"

    def __init__(
        self,
        estimator: Optional[LifetimeEstimator] = None,
        horizon: int = 64,
        beta: float = 0.25,
        min_share: float = 0.1,
    ):
        if not 0.0 < beta <= 1.0:
            raise ValueError("beta must be in (0, 1]")
        if not 0.0 <= min_share <= 1.0:
            raise ValueError("min_share must be in [0, 1]")
        self.estimator = estimator if estimator is not None else LExp(8.0)
        self.horizon = horizon
        self.beta = beta
        self.min_share = min_share
        self._levels: tuple[str, ...] = ()
        #: EMA of each level's eviction cutoff (its budget pressure).
        self._pressure: dict[str, float] = {}
        #: Current budget shares per level (sum to 1 over levels).
        self._shares: dict[str, float] = {}
        #: Per-step memo of node scores, keyed ``(stream, value)``.
        self._memo: dict[tuple[str, int], float] = {}
        self._memo_time: Optional[int] = None
        #: Frequency fallback: per-stream value counts plus the history
        #: prefix length already folded in (PROB-style incremental sync).
        self._counts: dict[str, dict[int, int]] = {}
        self._consumed: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self, ctx: PolicyContext) -> None:
        """Derive the trie levels from the topology and equalize budgets."""
        if ctx.partner_names is not None:
            self._levels = tuple(ctx.partner_names)
        elif ctx.kind == "cache":
            self._levels = ("R",)
        else:
            self._levels = ("R", "S")
        self._pressure = {name: 0.0 for name in self._levels}
        self._shares = {
            name: 1.0 / len(self._levels) for name in self._levels
        }
        self._memo = {}
        self._memo_time = None
        self._counts = {name: {} for name in self._levels}
        self._consumed = {name: 0 for name in self._levels}

    # ------------------------------------------------------------------
    # Node scoring (shared across every tuple under a (stream, value))
    # ------------------------------------------------------------------
    def _sync(self, ctx: PolicyContext) -> None:
        """Advance the per-step memo epoch and fold new history entries
        into the frequency counts."""
        if self._memo_time != ctx.time:
            self._memo = {}
            self._memo_time = ctx.time
        for name in self._levels:
            history = ctx.history_for(name)
            counts = self._counts[name]
            for value in history[self._consumed[name] :]:
                if value is not None:
                    counts[value] = counts.get(value, 0) + 1
            self._consumed[name] = len(history)

    def _node_score(self, stream: str, value: int, ctx: PolicyContext) -> float:
        key = (stream, value)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if ctx.kind == "cache":
            score = self._cache_benefit(value, ctx)
        else:
            score = self._join_benefit(stream, value, ctx)
        self._memo[key] = score
        return score

    def _cache_benefit(self, value: int, ctx: PolicyContext) -> float:
        model = ctx.r_model
        if model is None:
            return float(self._counts["R"].get(value, 0))
        history = None if model.is_independent else ctx.latest_history("R")
        return heeb_cache(
            model, ctx.time, value, self.estimator, self.horizon, history
        )

    def _join_benefit(self, stream: str, value: int, ctx: PolicyContext) -> float:
        total = 0.0
        for name in ctx.partners_of(stream):
            model = ctx.model_for(name)
            if model is None:
                total += float(self._counts.get(name, {}).get(value, 0))
                continue
            history = None
            if not model.is_independent:
                history = ctx.latest_history(name)
            total += heeb_join(
                model, ctx.time, value, self.estimator, self.horizon, history
            )
        return total

    # ------------------------------------------------------------------
    # Victim selection
    # ------------------------------------------------------------------
    def select_victims(
        self,
        candidates: Sequence[StreamTuple],
        n_evict: int,
        ctx: PolicyContext,
    ) -> list[StreamTuple]:
        if n_evict <= 0:
            return []
        self._sync(ctx)
        keep_count = len(candidates) - n_evict
        scored = sorted(
            (self._node_score(tup.side, tup.value, ctx), tup.uid, tup)
            for tup in candidates
        )
        if keep_count <= 0:
            victims = [tup for _, _, tup in scored]
            self._finish_round(scored[:n_evict], ctx)
            return victims

        # Phase 1: per-level keeps, up to each level's integer quota.
        by_level: dict[str, list[tuple[float, int, StreamTuple]]] = {}
        for entry in scored:
            by_level.setdefault(entry[2].side, []).append(entry)
        quotas = self._integer_quotas(keep_count, by_level)
        kept: set[int] = set()
        for name, group in by_level.items():
            # ``scored`` order is (score, uid) ascending — keep from the
            # back so ties evict the lower uid, like ScoredPolicy.
            for entry in group[len(group) - quotas.get(name, 0) :]:
                kept.add(entry[1])

        # Phase 2: fill any leftover keeps globally by score.
        leftover = keep_count - len(kept)
        if leftover > 0:
            for entry in reversed(scored):
                if leftover == 0:
                    break
                if entry[1] not in kept:
                    kept.add(entry[1])
                    leftover -= 1

        victims_scored = [e for e in scored if e[1] not in kept]
        self._finish_round(victims_scored, ctx)
        return [tup for _, _, tup in victims_scored]

    def _integer_quotas(
        self,
        keep_count: int,
        by_level: dict[str, list],
    ) -> dict[str, int]:
        """Split ``keep_count`` across the candidate levels by budget
        share (largest-remainder rounding, capped at group size)."""
        present = [name for name in self._levels if name in by_level]
        if not present:
            return {}
        total_share = sum(self._shares[name] for name in present)
        raw = {
            name: keep_count * self._shares[name] / total_share
            for name in present
        }
        quotas = {name: min(int(raw[name]), len(by_level[name])) for name in present}
        remainder = keep_count - sum(quotas.values())
        # Hand out leftover slots by descending fractional part (ties in
        # level order), skipping saturated levels.
        order = sorted(
            present, key=lambda n: (-(raw[n] - int(raw[n])), present.index(n))
        )
        while remainder > 0:
            progressed = False
            for name in order:
                if remainder == 0:
                    break
                if quotas[name] < len(by_level[name]):
                    quotas[name] += 1
                    remainder -= 1
                    progressed = True
            if not progressed:
                break
        return quotas

    def _finish_round(
        self,
        victims_scored: Sequence[tuple[float, int, StreamTuple]],
        ctx: PolicyContext,
    ) -> None:
        """Publish the cutoff, then EMA-adapt the per-level budgets."""
        rec = ctx.recorder
        if victims_scored and rec.enabled:
            rec.series(
                "scores.cutoff", ctx.time, max(e[0] for e in victims_scored)
            )
        cutoffs = {name: 0.0 for name in self._levels}
        for score, _, tup in victims_scored:
            if tup.side in cutoffs and score > cutoffs[tup.side]:
                cutoffs[tup.side] = score
        beta = self.beta
        for name in self._levels:
            self._pressure[name] = (
                (1.0 - beta) * self._pressure[name] + beta * cutoffs[name]
            )
        floor = self.min_share / len(self._levels)
        total = sum(self._pressure.values())
        if total > 0.0:
            shares = {
                name: max(self._pressure[name] / total, floor)
                for name in self._levels
            }
            norm = sum(shares.values())
            self._shares = {n: s / norm for n, s in shares.items()}
        if rec.enabled:
            for name in self._levels:
                rec.series(
                    f"trie.budget.{name}", ctx.time, self._shares[name]
                )
