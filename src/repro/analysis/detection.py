"""Online identification of a stream's statistical model.

The paper assumes the stochastic processes governing the inputs are
"known or observed" and notes that identifying them "is a problem
orthogonal to ours but essential to the applicability of our framework"
(Section 1).  This module supplies that missing piece for the model
classes the framework supports:

* stationary i.i.d. values,
* linear trend plus i.i.d. bounded noise,
* random walk (with drift),
* AR(1).

The classifier is deliberately simple and transparent -- the kind of
procedure the paper's "standard MLE procedure" remark suggests:

1. Fit an OLS line ``a·t + b``; a clearly nonzero slope with stationary
   residuals means *linear trend*.
2. Otherwise fit an AR(1) to the (detrended) series.  ``φ1 ≈ 0`` means
   *stationary*; ``φ1 ≈ 1`` (equivalently, differences look i.i.d. while
   levels wander) means *random walk*; anything in between is *AR(1)*.

:func:`detect_model` returns a fitted, ready-to-use
:class:`~repro.streams.base.StreamModel`, so callers can hand observed
history to HEEB without specifying the model class by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..streams.ar1 import AR1Stream
from ..streams.base import StreamModel
from ..streams.linear_trend import LinearTrendStream
from ..streams.noise import DiscreteDistribution, from_mapping
from ..streams.random_walk import RandomWalkStream
from ..streams.stationary import StationaryStream
from .fitting import fit_ar1

__all__ = ["ModelDiagnosis", "diagnose_series", "detect_model"]

#: |slope| (in value units per step) above which a trend is declared,
#: relative to the residual spread.
_TREND_SNR = 0.05
#: φ1 below this is treated as stationary; above 1 − _UNIT_ROOT_MARGIN as
#: a random walk.
_STATIONARY_PHI1 = 0.2
_UNIT_ROOT_MARGIN = 0.08


@dataclass(frozen=True)
class ModelDiagnosis:
    """The classifier's verdict plus the statistics it was based on."""

    kind: str  # "trend" | "stationary" | "random_walk" | "ar1"
    slope: float
    intercept: float
    residual_std: float
    phi1: float

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"{self.kind} (slope={self.slope:.4f}, phi1={self.phi1:.3f}, "
            f"residual std={self.residual_std:.3f})"
        )


def _ols_line(series: np.ndarray) -> tuple[float, float, np.ndarray]:
    t = np.arange(series.size, dtype=np.float64)
    slope, intercept = np.polyfit(t, series, 1)
    residuals = series - (slope * t + intercept)
    return float(slope), float(intercept), residuals


def diagnose_series(series: Sequence[float]) -> ModelDiagnosis:
    """Classify a series into one of the framework's model classes."""
    x = np.asarray(series, dtype=np.float64)
    if x.ndim != 1 or x.size < 20:
        raise ValueError("need a 1-D series with at least 20 observations")

    slope, intercept, residuals = _ols_line(x)
    residual_std = float(residuals.std())

    # Trend test: the drift over the observation window must dwarf the
    # residual spread, and the residuals must not themselves wander
    # (a random walk also produces a spurious OLS slope, but its
    # residuals are strongly autocorrelated with huge spread).
    drift_total = abs(slope) * x.size
    if residual_std == 0.0 and drift_total > 0:
        trendlike = True
        resid_phi1 = 0.0
    else:
        resid_phi1 = fit_ar1(residuals).phi1 if residual_std > 0 else 0.0
        trendlike = (
            drift_total > 10 * max(residual_std, 1e-9)
            and abs(slope) > _TREND_SNR * max(residual_std, 1e-9)
            and resid_phi1 < 0.9
        )
    if trendlike:
        return ModelDiagnosis(
            kind="trend",
            slope=slope,
            intercept=intercept,
            residual_std=residual_std,
            phi1=resid_phi1,
        )

    fit = fit_ar1(x)
    if abs(fit.phi1) < _STATIONARY_PHI1:
        kind = "stationary"
    elif fit.phi1 > 1.0 - _UNIT_ROOT_MARGIN:
        kind = "random_walk"
    else:
        kind = "ar1"
    return ModelDiagnosis(
        kind=kind,
        slope=0.0,
        intercept=float(x.mean()),
        residual_std=float(np.diff(x).std()),
        phi1=float(fit.phi1),
    )


def _empirical_distribution(values: np.ndarray) -> DiscreteDistribution:
    ints = np.round(values).astype(np.int64)
    uniq, counts = np.unique(ints, return_counts=True)
    return from_mapping({int(v): float(c) for v, c in zip(uniq, counts)})


def detect_model(series: Sequence[float], bucket: float = 1.0) -> StreamModel:
    """Fit and return a ready-to-use stream model for an observed series.

    * trend → :class:`LinearTrendStream` with the empirical residual
      distribution as noise;
    * stationary → :class:`StationaryStream` over the empirical pmf;
    * random walk → :class:`RandomWalkStream` with the empirical step
      distribution;
    * AR(1) → :class:`AR1Stream` with the conditional-MLE parameters.
    """
    x = np.asarray(series, dtype=np.float64)
    diagnosis = diagnose_series(x)

    if diagnosis.kind == "trend":
        if diagnosis.slope < 0:
            raise ValueError(
                "decreasing trend detected; the framework's trend model "
                "covers non-decreasing trends only (Section 5.3)"
            )
        _, _, residuals = _ols_line(x)
        noise = _empirical_distribution(residuals)
        # Anchor the trend so that trend(t) matches the fitted line for
        # the observed time indices (lag folds the intercept in).
        speed = diagnosis.slope
        lag = -diagnosis.intercept / speed if speed != 0 else 0.0
        return LinearTrendStream(noise, speed=speed, lag=int(round(lag)))

    if diagnosis.kind == "stationary":
        return StationaryStream(_empirical_distribution(x))

    if diagnosis.kind == "random_walk":
        steps = _empirical_distribution(np.diff(x))
        drift = int(round(float(np.diff(x).mean())))
        if drift != 0:
            steps = steps.shift(-drift)
        return RandomWalkStream(
            steps, drift=drift, start=int(round(float(x[-1])))
        )

    fit = fit_ar1(x)
    return AR1Stream(fit.phi0, fit.phi1, fit.sigma, bucket=bucket)
