"""Analysis utilities: model fitting, model identification, statistics."""

from .detection import ModelDiagnosis, detect_model, diagnose_series
from .fitting import AR1Fit, fit_ar1
from .stats import Summary, summarize

__all__ = [
    "AR1Fit",
    "ModelDiagnosis",
    "Summary",
    "detect_model",
    "diagnose_series",
    "fit_ar1",
    "summarize",
]
