"""AR(1) model fitting -- the "standard MLE procedure" of Section 6.5.

For a Gaussian AR(1), the conditional maximum-likelihood estimates of
``(φ0, φ1, σ)`` coincide with ordinary least squares of ``X_t`` on
``X_{t−1}``; this is the procedure the paper applies offline to the
Melbourne temperature data, obtaining ``X_t = 0.72·X_{t−1} + 5.59 +
N(0, 4.22²)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["AR1Fit", "fit_ar1"]


@dataclass(frozen=True)
class AR1Fit:
    """Fitted AR(1) parameters: ``X_t = φ0 + φ1·X_{t−1} + N(0, σ²)``."""

    phi0: float
    phi1: float
    sigma: float
    n_observations: int

    @property
    def stationary_mean(self) -> float:
        return self.phi0 / (1.0 - self.phi1)

    @property
    def stationary_std(self) -> float:
        return self.sigma / math.sqrt(1.0 - self.phi1**2)


def fit_ar1(series: Sequence[float]) -> AR1Fit:
    """Fit an AR(1) by conditional MLE (equivalently OLS)."""
    x = np.asarray(series, dtype=np.float64)
    if x.ndim != 1 or x.size < 3:
        raise ValueError("need a 1-D series with at least 3 observations")
    prev = x[:-1]
    curr = x[1:]
    prev_mean = prev.mean()
    curr_mean = curr.mean()
    denom = float(np.dot(prev - prev_mean, prev - prev_mean))
    if denom == 0.0:
        raise ValueError("constant series: AR(1) slope undefined")
    phi1 = float(np.dot(prev - prev_mean, curr - curr_mean)) / denom
    phi0 = curr_mean - phi1 * prev_mean
    residuals = curr - (phi0 + phi1 * prev)
    sigma = float(np.sqrt(np.mean(residuals**2)))
    if sigma <= 0.0:
        raise ValueError("degenerate fit: zero innovation variance")
    return AR1Fit(phi0=phi0, phi1=phi1, sigma=sigma, n_observations=x.size)
