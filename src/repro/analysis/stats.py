"""Run-aggregation helpers for experiment reporting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Summary", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Mean / spread summary of one metric across runs."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    @property
    def relative_std(self) -> float:
        """Coefficient of variation (the paper reports <5% for most runs)."""
        return self.std / self.mean if self.mean else float("inf")


def summarize(values: Sequence[float]) -> Summary:
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no values to summarize")
    return Summary(
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        n=int(arr.size),
    )
