"""Incremental HEEB computation -- Section 4.4.1/4.4.2.

For independent streams and ``L_exp``, the paper derives exact one-step
update rules so that ``H_x`` need not be recomputed from scratch at every
time step:

* Corollary 3 (joining):
  ``H_{x,t0} = e^{1/α} · H_{x,t0−1} − Pr{X^R_{t0} = v_x}``.
* Corollary 4 (caching):
  ``H_{x,t0} = (e^{1/α} · H_{x,t0−1} − Pr{X^R_{t0} = v_x})
  / (1 − Pr{X^R_{t0} = v_x})``.
  (Setting ``α = ∞`` recovers the ``L_inf`` update.)

Value-incremental computation (Corollary 5) exploits the translation
invariance of linear-trend streams: a tuple with value ``v`` at time ``t``
has the same ECB (hence ``H``) as a tuple with value ``v + a(t' − t)`` at
time ``t'``.

**Numerical caveat** (documented behaviour, exercised by the test suite):
the joining recurrence multiplies by ``e^{1/α} > 1`` every step, so any
floating-point error in ``H`` is amplified exponentially over time.  The
closed-form algebra is exact, but a practical tracker must periodically
re-synchronize against the direct sum.  :class:`IncrementalHeebTracker`
does so every ``resync_every`` steps.
"""

from __future__ import annotations

import math

from ..streams.base import StreamModel, Value
from .heeb import heeb_cache, heeb_join
from .lifetime import LExp

__all__ = [
    "join_step",
    "cache_step",
    "value_shifted_time",
    "IncrementalHeebTracker",
]


def join_step(h_prev: float, alpha: float, prob_now: float) -> float:
    """Corollary 3: advance a joining ``H`` from ``t0−1`` to ``t0``.

    ``prob_now`` is ``Pr{X^R_{t0} = v_x}``, the match probability of the
    step that just became the present.
    """
    return math.exp(1.0 / alpha) * h_prev - prob_now


def cache_step(h_prev: float, alpha: float, prob_now: float) -> float:
    """Corollary 4: advance a caching ``H`` from ``t0−1`` to ``t0``."""
    if prob_now >= 1.0:
        raise ValueError(
            "cache_step undefined when the current reference probability is 1"
        )
    return (math.exp(1.0 / alpha) * h_prev - prob_now) / (1.0 - prob_now)


def value_shifted_time(
    value_new: int, value_anchor: int, t_anchor: int, slope: float
) -> float:
    """Corollary 5: the time at which ``value_anchor``'s H equals
    ``value_new``'s H now.

    For a stream ``X_t = a·t + b + Y_t`` with i.i.d. noise,
    ``B_{v,t}(Δt) = B_{v + a(t'−t), t'}(Δt)``; solving for the anchor's
    reference frame gives ``t' = t_anchor + (value_anchor − value_new)/a``.
    """
    if slope == 0:
        raise ValueError("value-incremental computation requires a ≠ 0")
    return t_anchor + (value_anchor - value_new) / slope


class IncrementalHeebTracker:
    """Tracks ``H_x`` for one tuple over time using the Corollary-3/4 updates.

    Parameters
    ----------
    model:
        The stream whose arrivals the tuple matches (the partner stream
        for joining, the reference stream for caching).  Must be
        independent (the corollaries require it).
    kind:
        ``"join"`` or ``"cache"``.
    value:
        The tuple's join-attribute value.
    t0:
        Time at which tracking starts.
    estimator:
        The ``L_exp`` estimator in use.
    resync_every:
        Recompute the direct sum after this many incremental steps to
        bound the exponential error amplification (see module docstring).
        ``0`` disables re-synchronization.
    """

    def __init__(
        self,
        model: StreamModel,
        kind: str,
        value: Value,
        t0: int,
        estimator: LExp,
        horizon: int | None = None,
        resync_every: int = 32,
    ):
        if not model.is_independent:
            raise ValueError(
                "incremental HEEB requires an independent stream model "
                "(Corollaries 3-4); use precomputation for Markov models"
            )
        if kind not in ("join", "cache"):
            raise ValueError("kind must be 'join' or 'cache'")
        self._model = model
        self._kind = kind
        self._value = value
        self._estimator = estimator
        self._horizon = horizon
        self._resync_every = int(resync_every)
        self._steps_since_sync = 0
        self._t = t0
        self._h = self._direct(t0)

    @property
    def time(self) -> int:
        return self._t

    @property
    def value(self) -> Value:
        return self._value

    @property
    def h(self) -> float:
        return self._h

    def _direct(self, t0: int) -> float:
        if self._kind == "join":
            return heeb_join(
                self._model, t0, self._value, self._estimator, self._horizon
            )
        return heeb_cache(
            self._model, t0, self._value, self._estimator, self._horizon
        )

    def advance(self) -> float:
        """Advance one step (``t → t+1``) and return the updated ``H``."""
        self._t += 1
        prob_now = self._model.prob(self._t, self._value)
        if self._kind == "join":
            self._h = join_step(self._h, self._estimator.alpha, prob_now)
        else:
            self._h = cache_step(self._h, self._estimator.alpha, prob_now)
        self._steps_since_sync += 1
        if self._resync_every and self._steps_since_sync >= self._resync_every:
            self._h = self._direct(self._t)
            self._steps_since_sync = 0
        # Clamp tiny negative drift: H is a sum of nonnegative terms.
        if -1e-9 < self._h < 0.0:
            self._h = 0.0
        return self._h
