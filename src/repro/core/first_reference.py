"""First-reference probabilities for caching ECBs (Corollary 1).

The caching ECB is the cumulative probability that a database tuple's
value is referenced at all in a period, i.e. the running sum of
*first-reference* probabilities

    ``f(Δt) = Pr{X_{t0+Δt} = v  ∧  X_t ≠ v for t0 < t < t0+Δt | x̄_t0}``.

This module computes ``f`` exactly for every stream model in the library:

* **independent streams** -- product form
  ``f(Δt) = p_{Δt} · Π_{j<Δt} (1 − p_j)``;
* **random walks** -- a lattice dynamic program over value offsets with a
  taboo state at the tuple's value;
* **AR(1) streams** -- a dynamic program over discretized value buckets
  with a taboo bucket, using the exact one-step normal kernel.

A Monte-Carlo estimator is provided to validate the analytic paths.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from ..streams.ar1 import AR1Stream
from ..streams.base import History, StreamModel
from ..streams.random_walk import RandomWalkStream

__all__ = [
    "first_reference_probs",
    "first_reference_independent",
    "first_reference_random_walk",
    "first_reference_ar1",
    "first_reference_monte_carlo",
    "ar1_transition_matrix",
]


def first_reference_probs(
    model: StreamModel,
    t0: int,
    value: int,
    horizon: int,
    history: History | None = None,
) -> np.ndarray:
    """Dispatch to the exact computation appropriate for ``model``."""
    if model.is_independent:
        return first_reference_independent(model, t0, value, horizon, history)
    if isinstance(model, RandomWalkStream):
        return first_reference_random_walk(model, value, horizon, history)
    if isinstance(model, AR1Stream):
        return first_reference_ar1(model, value, horizon, history)
    raise TypeError(
        f"no exact first-reference computation for {type(model).__name__}; "
        "use first_reference_monte_carlo"
    )


def first_reference_independent(
    model: StreamModel,
    t0: int,
    value: int,
    horizon: int,
    history: History | None = None,
) -> np.ndarray:
    """Product form for mutually independent per-step variables."""
    probs = np.array(
        [model.prob(t0 + dt, value, history) for dt in range(1, horizon + 1)]
    )
    survival = np.cumprod(1.0 - probs)
    first = probs.copy()
    first[1:] *= survival[:-1]
    return first


def first_reference_random_walk(
    walk: RandomWalkStream,
    value: int,
    horizon: int,
    history: History | None = None,
) -> np.ndarray:
    """Exact lattice DP for a random walk with drift.

    The walk is translation invariant, so only the offset
    ``d = value − x_{t0}`` matters (Theorem 5(2)).  We evolve the offset
    distribution one step at a time, recording and then removing the mass
    sitting on the taboo offset ``d``.
    """
    if history is None:
        anchor = walk.start
    elif history.last_value is None:
        raise ValueError("random walk history must carry a value")
    else:
        anchor = int(history.last_value)
    d = int(value) - anchor

    step = walk.step
    kernel = step.probs  # aligned with offsets step.min_value..step.max_value
    # Dense distribution over offsets; track the offset of index 0.
    dist = np.array([1.0])
    lo = 0
    first = np.zeros(horizon)
    for i in range(horizon):
        dist = np.convolve(dist, kernel)
        lo = lo + step.min_value + walk.drift
        idx = d - lo
        if 0 <= idx < dist.size:
            first[i] = dist[idx]
            dist[idx] = 0.0
    return first


def ar1_transition_matrix(
    model: AR1Stream, buckets: np.ndarray
) -> np.ndarray:
    """One-step transition matrix between emitted buckets of an AR(1).

    ``T[i, j] = Pr{bucket j at t+1 | latent at center of bucket i at t}``.
    Mass falling outside the bucket range is folded into the edge buckets
    so every row sums to one (the range should cover the stationary
    distribution generously; edge folding only guards numerical corners).
    """
    centers = buckets * model.bucket
    means = model.phi0 + model.phi1 * centers
    edges = (np.concatenate([buckets, [buckets[-1] + 1]]) - 0.5) * model.bucket
    # cdf_grid[i, e] = Phi((edge_e - mean_i) / sigma)
    cdf_grid = norm.cdf((edges[None, :] - means[:, None]) / model.sigma)
    transition = np.diff(cdf_grid, axis=1)
    transition[:, 0] += cdf_grid[:, 0]
    transition[:, -1] += 1.0 - cdf_grid[:, -1]
    return transition


def _ar1_bucket_range(
    model: AR1Stream, anchor_latent: float, n_sigmas: float = 6.0
) -> np.ndarray:
    """Bucket indices generously covering the reachable value range."""
    lo_latent = min(model.stationary_mean, anchor_latent) - n_sigmas * model.stationary_std
    hi_latent = max(model.stationary_mean, anchor_latent) + n_sigmas * model.stationary_std
    return np.arange(model.to_bucket(lo_latent), model.to_bucket(hi_latent) + 1)


def first_reference_ar1(
    model: AR1Stream,
    value: int,
    horizon: int,
    history: History | None = None,
    n_sigmas: float = 6.0,
) -> np.ndarray:
    """Exact bucket DP for an AR(1) reference stream.

    Evolves the (taboo-avoiding) bucket distribution with the one-step
    kernel.  The first step uses the exact latent anchor rather than its
    bucket center.
    """
    if history is None:
        anchor_latent = model.start
    elif history.last_value is None:
        raise ValueError("AR(1) history must carry a value")
    else:
        anchor_latent = model.to_latent(int(history.last_value))

    buckets = _ar1_bucket_range(model, anchor_latent, n_sigmas)
    taboo = int(value) - int(buckets[0])
    in_range = 0 <= taboo < buckets.size

    transition = ar1_transition_matrix(model, buckets)

    # Exact first step from the latent anchor.
    mean1 = model.phi0 + model.phi1 * anchor_latent
    edges = (np.concatenate([buckets, [buckets[-1] + 1]]) - 0.5) * model.bucket
    cdf = norm.cdf((edges - mean1) / model.sigma)
    dist = np.diff(cdf)
    dist[0] += cdf[0]
    dist[-1] += 1.0 - cdf[-1]

    first = np.zeros(horizon)
    for i in range(horizon):
        if i > 0:
            dist = dist @ transition
        if in_range:
            first[i] = dist[taboo]
            dist[taboo] = 0.0
    return first


def first_reference_monte_carlo(
    model: StreamModel,
    t0: int,
    value: int,
    horizon: int,
    history: History | None = None,
    n_samples: int = 20_000,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Monte-Carlo estimate of the first-reference probabilities.

    Samples ``n_samples`` future trajectories and histograms the first
    time each one hits ``value``.  Used in tests to validate the analytic
    computations.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    counts = np.zeros(horizon)
    for _ in range(n_samples):
        path = model.sample_future(t0, horizon, rng, history)
        for i, v in enumerate(path):
            if v == value:
                counts[i] += 1
                break
    return counts / n_samples
