"""Tuple and cache-state representations shared by simulators and policies.

Section 2 of the paper assumes all tuples are distinct objects even when
their join-attribute values coincide, and that every tuple occupies one
cache slot.  :class:`StreamTuple` therefore carries a unique id alongside
its value, and :class:`CacheState` indexes cached tuples by (side, value)
so join probing is O(matches) rather than O(cache size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Optional

__all__ = ["Side", "StreamTuple", "CacheState", "TupleFactory", "partner"]

#: Which stream a tuple came from.  The caching problem uses "R" for the
#: reference stream and "S" for database (supply) tuples, mirroring the
#: reduction of Section 2.
Side = str

R_SIDE: Side = "R"
S_SIDE: Side = "S"


def partner(side: Side) -> Side:
    """The stream a tuple joins against."""
    if side == R_SIDE:
        return S_SIDE
    if side == S_SIDE:
        return R_SIDE
    raise ValueError(f"unknown side {side!r}")


@dataclass(frozen=True)
class StreamTuple:
    """One stream tuple: distinct identity, join value, provenance.

    Attributes
    ----------
    uid:
        Unique id; two tuples with equal values are still distinct.
    side:
        ``"R"`` or ``"S"``.
    value:
        Join-attribute value.  Usually an integer; the caching→joining
        reduction uses ``(v, i)`` pairs; ``None`` is the paper's "−".
    arrival:
        The time step at which the tuple was produced (for database tuples
        in the caching problem: the step at which they were fetched).
    """

    uid: int
    side: Side
    value: Optional[Hashable]
    arrival: int

    def joins_with(self, other: "StreamTuple") -> bool:
        """Equijoin predicate: opposite sides, equal non-"−" values."""
        return (
            self.side != other.side
            and self.value is not None
            and self.value == other.value
        )


class TupleFactory:
    """Mints :class:`StreamTuple` objects with unique ids.

    ``start`` and ``step`` define a strided uid space: the factory mints
    ``start, start + step, start + 2*step, ...``.  The default
    ``(0, 1)`` is the dense sequence every simulator uses; the sharded
    server (:mod:`repro.serve`) gives shard ``i`` of ``n`` the stride
    ``(i, n)`` so uids stay globally unique — and deterministic per
    shard — no matter how the event loop interleaves the shards.
    """

    def __init__(self, start: int = 0, step: int = 1) -> None:
        if step < 1:
            raise ValueError("step must be >= 1")
        self._next_uid = start
        self._step = step

    @property
    def next_uid(self) -> int:
        """The uid the next minted tuple will receive."""
        return self._next_uid

    def make(self, side: Side, value, arrival: int) -> StreamTuple:
        t = StreamTuple(self._next_uid, side, value, arrival)
        self._next_uid += self._step
        return t


@dataclass
class CacheState:
    """The set of cached tuples with value-indexed lookup.

    Not size-enforcing by itself -- the simulators enforce capacity after
    asking the policy for victims; this class only maintains indexes.
    """

    _tuples: dict[int, StreamTuple] = field(default_factory=dict)
    _by_key: dict[tuple[Side, Hashable], set[int]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[StreamTuple]:
        return iter(self._tuples.values())

    def __contains__(self, tup: StreamTuple) -> bool:
        return tup.uid in self._tuples

    def tuples(self) -> list[StreamTuple]:
        return list(self._tuples.values())

    def add(self, tup: StreamTuple) -> None:
        if tup.uid in self._tuples:
            raise ValueError(f"tuple {tup.uid} already cached")
        self._tuples[tup.uid] = tup
        if tup.value is not None:
            self._by_key.setdefault((tup.side, tup.value), set()).add(tup.uid)

    def remove(self, tup: StreamTuple) -> None:
        if tup.uid not in self._tuples:
            raise KeyError(f"tuple {tup.uid} not cached")
        del self._tuples[tup.uid]
        if tup.value is not None:
            key = (tup.side, tup.value)
            bucket = self._by_key[key]
            bucket.discard(tup.uid)
            if not bucket:
                del self._by_key[key]

    def matching(self, side: Side, value) -> list[StreamTuple]:
        """Cached tuples of ``side`` whose value equals ``value``."""
        if value is None:
            return []
        uids = self._by_key.get((side, value), ())
        return [self._tuples[u] for u in uids]

    def matching_band(self, side: Side, value, band: int) -> list[StreamTuple]:
        """Cached tuples of ``side`` within ``band`` of an integer value.

        Supports the band-join generalization (``|v_x − v| ≤ band``);
        requires integer join values.  ``band=0`` reduces to
        :meth:`matching`.
        """
        if value is None:
            return []
        if band == 0:
            return self.matching(side, value)
        out: list[StreamTuple] = []
        for u in range(int(value) - band, int(value) + band + 1):
            out.extend(self.matching(side, u))
        return out

    def count_side(self, side: Side) -> int:
        """Number of cached tuples from the given stream."""
        return sum(1 for t in self._tuples.values() if t.side == side)

    def expired(self, oldest_allowed_arrival: int) -> list[StreamTuple]:
        """Tuples that fell out of a sliding window (arrival too old)."""
        return [
            t for t in self._tuples.values() if t.arrival < oldest_allowed_arrival
        ]

    def remove_many(self, tuples: Iterable[StreamTuple]) -> None:
        for t in tuples:
            self.remove(t)
