"""Optional compiled kernel for the dense HEEB scoring sweep.

The batch HEEB helpers (:func:`repro.core.heeb.heeb_join_batch` and
friends) reduce scoring to one dense matrix-vector sweep: a
``(n_values, horizon)`` matrix of per-step match probabilities weighted
by the ``(horizon,)`` survival curve.  NumPy's ``@`` already does this
well, but it delegates to BLAS with pairwise/blocked summation; this
module restructures the sweep as an explicit accumulation loop that
numba can compile, behind the same ``REPRO_NATIVE=1`` / ``native=``
knob as the flow kernel (:mod:`repro.flow.native`).

Exactness contract: the sweep is *tolerance*-equivalent, not
bit-exact — different summation orders may differ in the last ulp — so
it is wired only into the batch helpers that already document
"agrees up to floating-point summation order".  The bit-exact batch
adapters in :mod:`repro.policies.batch` never route through it.

numba stays optional: without it :func:`heeb_sweep` silently evaluates
``probs @ weights``, and :func:`sweep_kernel_available` reports whether
the compiled path can run at all.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..flow.native import native_active

try:  # pragma: no cover - exercised only on numba-equipped installs
    import numba
except ImportError:  # pragma: no cover - the default, numba-free install
    numba = None

__all__ = ["heeb_sweep", "sweep_kernel_available", "weighted_sweep"]


def sweep_kernel_available() -> bool:
    """Whether the compiled sweep can run (numba importable)."""
    return numba is not None


def weighted_sweep(probs: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Loop-form ``probs @ weights`` (njit-compilable reference body).

    Accumulates left to right per row; used directly when numba is
    absent so tests can pin the kernel's arithmetic without compiling.
    """
    n, h = probs.shape
    out = np.zeros(n)
    for i in range(n):
        acc = 0.0
        for j in range(h):
            acc += probs[i, j] * weights[j]
        out[i] = acc
    return out


_JIT: Optional[Callable] = None


def _jit_sweep() -> Optional[Callable]:
    """Compile the sweep on first use (``None`` without numba)."""
    global _JIT
    if _JIT is None and numba is not None:
        _JIT = numba.njit(cache=True)(weighted_sweep)
    return _JIT


def heeb_sweep(probs: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """One dense benefit sweep, natively when the knob allows it.

    Falls back to ``probs @ weights`` whenever native kernels are off or
    numba is unavailable; both paths agree to floating-point summation
    order (the contract of the batch HEEB helpers).
    """
    if native_active():
        kernel = _jit_sweep()
        if kernel is not None:
            return kernel(
                np.ascontiguousarray(probs, dtype=np.float64),
                np.ascontiguousarray(weights, dtype=np.float64),
            )
    return probs @ weights
