"""ECB dominance tests -- Section 4.2.

``B_x`` *dominates* ``B_y`` when ``B_x(Δt) ≥ B_y(Δt)`` for all ``Δt ≥ 1``;
it *strongly* dominates when the inequality is strict everywhere.  Theorem
3 shows dominance identifies optimal replacement decisions: an optimal
algorithm may always keep the dominating tuple, and under strong dominance
every optimal algorithm must.

Corollary 2 lifts this to sets: a *dominated subset* ``V ⊆ U`` is one
where every ECB outside ``V`` dominates every ECB inside it; if at most
``Δk`` tuples must be discarded and ``|V| ≤ Δk``, discarding ``V`` is
optimal.

These tests operate on materialized ECBs over a shared finite horizon;
callers choose a horizon beyond which the ECBs are flat or the comparison
irrelevant for their weights.
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Mapping, Sequence

import numpy as np

from .ecb import ECB

__all__ = [
    "dominates",
    "strongly_dominates",
    "comparable",
    "dominance_matrix",
    "find_dominated_subset",
]

_ATOL = 1e-12


def _aligned(a: ECB, b: ECB) -> tuple[np.ndarray, np.ndarray]:
    """Extend both cumulative arrays to a common horizon (ECBs are flat
    beyond their recorded horizon only if fully accrued; we conservatively
    clamp at the last recorded value, matching :meth:`ECB.__call__`)."""
    h = max(a.horizon, b.horizon)
    pa = np.full(h, a.cumulative[-1])
    pa[: a.horizon] = a.cumulative
    pb = np.full(h, b.cumulative[-1])
    pb[: b.horizon] = b.cumulative
    return pa, pb


def dominates(a: ECB, b: ECB) -> bool:
    """``B_a(Δt) ≥ B_b(Δt)`` for every Δt in the shared horizon."""
    pa, pb = _aligned(a, b)
    return bool(np.all(pa >= pb - _ATOL))


def strongly_dominates(a: ECB, b: ECB) -> bool:
    """``B_a(Δt) > B_b(Δt)`` for every Δt in the shared horizon."""
    pa, pb = _aligned(a, b)
    return bool(np.all(pa > pb + _ATOL))


def comparable(a: ECB, b: ECB) -> bool:
    """True when one of the two ECBs dominates the other."""
    return dominates(a, b) or dominates(b, a)


def dominance_matrix(
    ecbs: Sequence[ECB],
) -> np.ndarray:
    """``M[i, j]`` is True when ``ecbs[i]`` dominates ``ecbs[j]``."""
    n = len(ecbs)
    m = np.zeros((n, n), dtype=bool)
    for i in range(n):
        for j in range(n):
            if i != j:
                m[i, j] = dominates(ecbs[i], ecbs[j])
    return m


def find_dominated_subset(
    ecbs: Mapping[Hashable, ECB],
    max_size: int,
    exhaustive_limit: int = 12,
) -> list[Hashable]:
    """Find a largest dominated subset of size at most ``max_size``.

    Per Corollary 2, discarding the returned keys is optimal (assuming at
    least that many tuples must be discarded).  For small candidate sets
    (``len(ecbs) <= exhaustive_limit``) the search is exact; otherwise a
    greedy pass sorts candidates by how many others dominate them and
    verifies the best prefix, which is sound (the returned set is always a
    valid dominated subset) but may miss a larger one.
    """
    if max_size <= 0:
        return []
    keys = list(ecbs.keys())
    n = len(keys)
    if n == 0:
        return []
    arr = [ecbs[k] for k in keys]
    dom = dominance_matrix(arr)

    def valid(subset: tuple[int, ...]) -> bool:
        inside = set(subset)
        return all(
            dom[u, v] for v in subset for u in range(n) if u not in inside
        )

    limit = min(max_size, n)
    if n <= exhaustive_limit:
        for size in range(limit, 0, -1):
            for subset in combinations(range(n), size):
                if valid(subset):
                    return [keys[i] for i in subset]
        return []

    # Greedy: most-dominated candidates first; take the largest valid prefix.
    dominated_counts = dom.sum(axis=0)
    order = sorted(range(n), key=lambda i: -int(dominated_counts[i]))
    for size in range(limit, 0, -1):
        subset = tuple(order[:size])
        if valid(subset):
            return [keys[i] for i in subset]
    return []
