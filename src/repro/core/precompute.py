"""Precomputed HEEB functions for Markov streams -- Theorem 5 / Section 4.4.3.

Time- and value-incremental computation require independent per-step
variables, so random walks and AR(1) streams need a different trick.
Theorem 5 shows ``H_x`` depends on time-invariant quantities only:

* **random walk with drift** (``φ1 = 1``): ``H_x = h1(v_x − x_{t0})`` --
  a one-dimensional curve over the offset from the latest observation;
* **AR(1)** (``0 < |φ1| < 1``): ``H_x = h2(v_x, x_{t0})`` -- a
  two-dimensional surface.

Both can be precomputed offline and stored compactly.  The paper stores
``h2`` via bicubic interpolation of 25 control points (Section 6.5,
Figures 15/16); :class:`H2Surface` reproduces that with a SciPy bicubic
spline.

Caching variants weight *first-reference* probabilities (requiring a
taboo dynamic program); joining variants weight plain match
probabilities.  For AR(1) caching, the DP runs exactly for
``exact_steps`` steps, after which the process has mixed and the
remaining contribution is closed in geometric/exponential form using the
stationary reference probability of the taboo bucket.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.interpolate import RectBivariateSpline
from scipy.stats import norm

from ..streams.ar1 import AR1Stream
from ..streams.random_walk import RandomWalkStream
from .first_reference import ar1_transition_matrix, first_reference_random_walk
from .lifetime import LExp, LifetimeEstimator

__all__ = [
    "H1Table",
    "random_walk_h1_join",
    "random_walk_h1_cache",
    "H2Surface",
    "ar1_h2_join",
    "ar1_h2_cache",
    "ar1_cache_heeb_values",
    "ar1_stationary_bucket_prob",
    "save_tables",
    "load_tables",
]


class H1Table:
    """A precomputed ``h1`` curve: ``H = h1(v_x − x_{t0})`` (Theorem 5(2)).

    Stores exact values on an integer offset grid; offsets outside the
    grid have (numerically) zero ``H``.
    """

    def __init__(self, offsets: np.ndarray, values: np.ndarray):
        offsets = np.asarray(offsets, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if offsets.ndim != 1 or offsets.shape != values.shape:
            raise ValueError("offsets and values must be matching 1-D arrays")
        if offsets.size and np.any(np.diff(offsets) != 1):
            raise ValueError("offsets must be contiguous integers")
        self._lo = int(offsets[0]) if offsets.size else 0
        self._values = values
        self._offsets = offsets

    @property
    def offsets(self) -> np.ndarray:
        return self._offsets

    @property
    def values(self) -> np.ndarray:
        return self._values

    def __call__(self, offset: int) -> float:
        idx = int(offset) - self._lo
        if 0 <= idx < self._values.size:
            return float(self._values[idx])
        return 0.0

    def lookup(self, offsets: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`__call__` over an arbitrary-shape offset array.

        Each element equals the scalar lookup bit-for-bit (same stored
        value, zero outside the grid); this is the array-in/array-out
        entry point the batch engine scores whole ``(B, slots)`` blocks
        through.
        """
        offs = np.asarray(offsets, dtype=np.int64)
        if self._values.size == 0:
            return np.zeros(offs.shape)
        idx = offs - self._lo
        valid = (idx >= 0) & (idx < self._values.size)
        return np.where(
            valid, self._values[np.clip(idx, 0, self._values.size - 1)], 0.0
        )


def _lexp_weights(estimator: LifetimeEstimator, horizon: int | None) -> np.ndarray:
    h = estimator.suggested_horizon() if horizon is None else horizon
    if h is None:
        raise ValueError(
            "estimator has no natural horizon; pass horizon explicitly"
        )
    return estimator.weights(h)


def random_walk_h1_join(
    walk: RandomWalkStream,
    estimator: LifetimeEstimator,
    horizon: int | None = None,
) -> H1Table:
    """Joining ``h1``: ``h1(d) = Σ_Δt Pr{S_Δt = d − Δt·φ0} · L(Δt)``.

    ``S_Δt`` is the sum of ``Δt`` i.i.d. steps; the multi-step pmfs come
    from cached convolutions on the walk.
    """
    weights = _lexp_weights(estimator, horizon)
    h = weights.size
    lo = min(
        dt * walk.drift + walk.step_sum(dt).min_value for dt in range(1, h + 1)
    )
    hi = max(
        dt * walk.drift + walk.step_sum(dt).max_value for dt in range(1, h + 1)
    )
    offsets = np.arange(lo, hi + 1)
    values = np.zeros(offsets.size)
    for dt in range(1, h + 1):
        dist = walk.step_sum(dt)
        values += weights[dt - 1] * dist.pmf_many(offsets - dt * walk.drift)
    return H1Table(offsets, values)


def random_walk_h1_cache(
    walk: RandomWalkStream,
    estimator: LifetimeEstimator,
    horizon: int | None = None,
    max_offset: int | None = None,
) -> H1Table:
    """Caching ``h1``: first-reference probabilities weighted by ``L``.

    This is the curve plotted in Figure 6 of the paper (random-walk
    reference streams with drift 0 / 2 / 4).  One taboo DP runs per
    offset, so the grid is limited to offsets with non-negligible mass.
    """
    weights = _lexp_weights(estimator, horizon)
    h = weights.size
    if max_offset is None:
        last = walk.step_sum(h)
        max_offset = max(
            abs(h * walk.drift + last.min_value),
            abs(h * walk.drift + last.max_value),
        )
    offsets = np.arange(-max_offset, max_offset + 1)
    values = np.zeros(offsets.size)
    anchor = walk.start
    for i, d in enumerate(offsets):
        first = first_reference_random_walk(walk, anchor + int(d), h)
        values[i] = float(np.dot(first, weights))
    return H1Table(offsets, values)


def ar1_stationary_bucket_prob(model: AR1Stream, bucket_value: int) -> float:
    """Stationary probability that the AR(1) emits the given bucket."""
    lo = (bucket_value - 0.5) * model.bucket
    hi = (bucket_value + 0.5) * model.bucket
    return float(
        norm.cdf(hi, loc=model.stationary_mean, scale=model.stationary_std)
        - norm.cdf(lo, loc=model.stationary_mean, scale=model.stationary_std)
    )


def ar1_cache_heeb_values(
    model: AR1Stream,
    taboo_bucket: int,
    x0_latents: np.ndarray,
    estimator: LExp,
    exact_steps: int = 60,
    n_sigmas: float = 6.0,
    close_tail: bool = True,
) -> np.ndarray:
    """Caching ``H`` values for one taboo bucket across many anchors.

    Runs the taboo DP exactly for ``exact_steps`` steps (vectorized over
    all anchor values at once), then closes the tail analytically: after
    the AR(1) has mixed, first-reference events are (approximately)
    geometric with the stationary bucket probability ``p∞``, and

        ``tail = survival · Σ_{Δt>m} p∞ (1−p∞)^{Δt−m−1} e^{−Δt/α}``
        ``     = survival · p∞ · e^{−(m+1)/α} / (1 − (1−p∞) e^{−1/α})``.
    """
    x0_latents = np.asarray(x0_latents, dtype=np.float64)
    lo_latent = (
        min(model.stationary_mean, float(x0_latents.min()))
        - n_sigmas * model.stationary_std
    )
    hi_latent = (
        max(model.stationary_mean, float(x0_latents.max()))
        + n_sigmas * model.stationary_std
    )
    buckets = np.arange(model.to_bucket(lo_latent), model.to_bucket(hi_latent) + 1)
    taboo_idx = int(taboo_bucket) - int(buckets[0])
    in_range = 0 <= taboo_idx < buckets.size

    transition = ar1_transition_matrix(model, buckets)
    edges = (np.concatenate([buckets, [buckets[-1] + 1]]) - 0.5) * model.bucket

    # Exact first step from each latent anchor.
    means1 = model.phi0 + model.phi1 * x0_latents
    cdf = norm.cdf((edges[None, :] - means1[:, None]) / model.sigma)
    dist = np.diff(cdf, axis=1)
    dist[:, 0] += cdf[:, 0]
    dist[:, -1] += 1.0 - cdf[:, -1]

    alpha = estimator.alpha
    h_values = np.zeros(x0_latents.size)
    for dt in range(1, exact_steps + 1):
        if dt > 1:
            dist = dist @ transition
        if in_range:
            h_values += dist[:, taboo_idx] * math.exp(-dt / alpha)
            dist[:, taboo_idx] = 0.0

    if close_tail and in_range:
        p_inf = ar1_stationary_bucket_prob(model, int(taboo_bucket))
        survival = dist.sum(axis=1)
        ratio = (1.0 - p_inf) * math.exp(-1.0 / alpha)
        tail = survival * p_inf * math.exp(-(exact_steps + 1) / alpha) / (1.0 - ratio)
        h_values += tail
    return h_values


class H2Surface:
    """A precomputed ``h2`` surface with bicubic interpolation.

    ``H = h2(v_x, x_{t0})`` per Theorem 5(1).  The surface is stored at
    control points (the paper uses 25, i.e. a 5×5 grid) and evaluated via
    a bicubic spline; queries outside the control domain are clamped to
    its boundary.
    """

    def __init__(
        self,
        v_grid: np.ndarray,
        x_grid: np.ndarray,
        values: np.ndarray,
    ):
        v_grid = np.asarray(v_grid, dtype=np.float64)
        x_grid = np.asarray(x_grid, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (v_grid.size, x_grid.size):
            raise ValueError(
                f"values shape {values.shape} does not match grids "
                f"({v_grid.size}, {x_grid.size})"
            )
        if v_grid.size < 4 or x_grid.size < 4:
            raise ValueError("bicubic interpolation needs >= 4 points per axis")
        self.v_grid = v_grid
        self.x_grid = x_grid
        self.values = values
        self._spline = RectBivariateSpline(v_grid, x_grid, values, kx=3, ky=3)

    def __call__(self, v: float, x0: float) -> float:
        v_c = float(np.clip(v, self.v_grid[0], self.v_grid[-1]))
        x_c = float(np.clip(x0, self.x_grid[0], self.x_grid[-1]))
        return float(self._spline(v_c, x_c)[0, 0])

    def evaluate_grid(
        self, v_values: np.ndarray, x_values: np.ndarray
    ) -> np.ndarray:
        """Spline values on a dense grid (rows: v, columns: x)."""
        v_c = np.clip(v_values, self.v_grid[0], self.v_grid[-1])
        x_c = np.clip(x_values, self.x_grid[0], self.x_grid[-1])
        return self._spline(v_c, x_c)

    def evaluate_many(self, v_values: np.ndarray, x_values: np.ndarray) -> np.ndarray:
        """Pointwise spline evaluation over broadcastable (v, x) arrays.

        Unlike :meth:`evaluate_grid` (outer product), this pairs
        ``v_values[i]`` with ``x_values[i]``, which is the shape batch
        scoring needs.  Out-of-domain queries clamp to the control-grid
        boundary exactly like the scalar :meth:`__call__`.
        """
        v_c = np.clip(np.asarray(v_values, dtype=np.float64), self.v_grid[0], self.v_grid[-1])
        x_c = np.clip(np.asarray(x_values, dtype=np.float64), self.x_grid[0], self.x_grid[-1])
        v_b, x_b = np.broadcast_arrays(v_c, x_c)
        flat = self._spline.ev(v_b.ravel(), x_b.ravel())
        return flat.reshape(v_b.shape)


def ar1_h2_join(
    model: AR1Stream,
    estimator: LifetimeEstimator,
    v_grid: np.ndarray,
    x_grid: np.ndarray,
    horizon: int | None = None,
) -> H2Surface:
    """Joining ``h2``: match probabilities weighted by ``L`` (no taboo).

    ``v_grid`` holds emitted bucket values, ``x_grid`` latent anchors.
    Exact via the conditional normal moments of the AR(1).
    """
    weights = _lexp_weights(estimator, horizon)
    h = weights.size
    v_grid = np.asarray(v_grid, dtype=np.float64)
    x_grid = np.asarray(x_grid, dtype=np.float64)
    values = np.zeros((v_grid.size, x_grid.size))
    lo = (v_grid - 0.5) * model.bucket
    hi = (v_grid + 0.5) * model.bucket
    for j, x0 in enumerate(x_grid):
        for dt in range(1, h + 1):
            mean, std = model.conditional_moments(dt, float(x0))
            probs = norm.cdf(hi, loc=mean, scale=std) - norm.cdf(
                lo, loc=mean, scale=std
            )
            values[:, j] += weights[dt - 1] * probs
    return H2Surface(v_grid, x_grid, values)


def ar1_h2_cache(
    model: AR1Stream,
    estimator: LExp,
    v_grid: np.ndarray,
    x_grid: np.ndarray,
    exact_steps: int = 60,
    close_tail: bool = True,
) -> H2Surface:
    """Caching ``h2``: the surface of Figures 15/16.

    One vectorized taboo DP per ``v`` control point computes the column
    of ``H`` values across all ``x`` anchors.
    """
    v_grid = np.asarray(v_grid)
    x_grid = np.asarray(x_grid, dtype=np.float64)
    values = np.zeros((v_grid.size, x_grid.size))
    for i, v in enumerate(v_grid):
        values[i, :] = ar1_cache_heeb_values(
            model,
            int(round(float(v))),
            x_grid,
            estimator,
            exact_steps=exact_steps,
            close_tail=close_tail,
        )
    return H2Surface(v_grid.astype(np.float64), x_grid, values)


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def save_tables(path, **tables) -> None:
    """Persist precomputed ``H1Table`` / ``H2Surface`` objects to ``.npz``.

    Precomputation is an offline step in the paper's architecture
    (Section 4.4.3); persisting its outputs lets a stream processor load
    them at startup instead of recomputing.  Example::

        save_tables("heeb.npz", walk=h1_table, real=h2_surface)
        tables = load_tables("heeb.npz")
    """
    arrays: dict[str, np.ndarray] = {}
    for name, table in tables.items():
        if isinstance(table, H1Table):
            arrays[f"{name}.kind"] = np.array("h1")
            arrays[f"{name}.offsets"] = table.offsets
            arrays[f"{name}.values"] = table.values
        elif isinstance(table, H2Surface):
            arrays[f"{name}.kind"] = np.array("h2")
            arrays[f"{name}.v_grid"] = table.v_grid
            arrays[f"{name}.x_grid"] = table.x_grid
            arrays[f"{name}.values"] = table.values
        else:
            raise TypeError(
                f"{name}: expected H1Table or H2Surface, got {type(table)}"
            )
    np.savez(path, **arrays)


def load_tables(path) -> dict:
    """Load tables persisted by :func:`save_tables`."""
    data = np.load(path, allow_pickle=False)
    names = {key.split(".")[0] for key in data.files}
    out: dict = {}
    for name in names:
        kind = str(data[f"{name}.kind"])
        if kind == "h1":
            out[name] = H1Table(data[f"{name}.offsets"], data[f"{name}.values"])
        elif kind == "h2":
            out[name] = H2Surface(
                data[f"{name}.v_grid"],
                data[f"{name}.x_grid"],
                data[f"{name}.values"],
            )
        else:  # pragma: no cover - file written by save_tables only
            raise ValueError(f"unknown table kind {kind!r}")
    return out
