"""HEEB: the Heuristic of Estimated Expected Benefit -- Section 4.3.

For each candidate tuple ``x``, HEEB computes

    ``H_x = B_x(1) L_x(1) + Σ_{Δt≥2} (B_x(Δt) − B_x(Δt−1)) L_x(Δt)``,

the expected total benefit of caching ``x`` weighted by the estimated
probability ``L_x(Δt)`` that ``x`` survives in the cache that long.
Tuples with the lowest ``H`` are discarded.  Theorem 4 guarantees HEEB
agrees with every optimal decision identified by dominance tests when the
``L`` functions satisfy the five properties of Section 4.3.

Equivalent forms used here (both proved in the paper by applying Lemma 1
/ Corollary 1 to the definition):

* joining: ``H_x = Σ_{Δt≥1} Pr{X^R_{t0+Δt} = v_x | x̄_t0} · L(Δt)``;
* caching: ``H_x = Σ_{Δt≥1} Pr{v_x first referenced at t0+Δt | x̄_t0}
  · L(Δt)``.
"""

from __future__ import annotations

import numpy as np

from ..streams.base import History, StreamModel, Value
from .ecb import ECB
from .first_reference import first_reference_probs
from .lifetime import LifetimeEstimator

__all__ = [
    "heeb_from_ecb",
    "heeb_join",
    "heeb_join_batch",
    "heeb_join_band",
    "heeb_cache",
    "heeb_cache_batch",
    "default_horizon",
]


def default_horizon(estimator: LifetimeEstimator, fallback: int = 500) -> int:
    """Pick a summation horizon from the estimator's decay, if it has one."""
    h = estimator.suggested_horizon()
    return fallback if h is None else max(1, min(h, 100_000))


def heeb_from_ecb(ecb: ECB, estimator: LifetimeEstimator) -> float:
    """``H`` from a materialized ECB: Σ increments × survival weights."""
    weights = estimator.weights(ecb.horizon)
    return float(np.dot(ecb.increments(), weights))


def heeb_join(
    partner: StreamModel,
    t0: int,
    value: Value,
    estimator: LifetimeEstimator,
    horizon: int | None = None,
    history: History | None = None,
) -> float:
    """Joining-problem ``H_x`` for a tuple joining against ``partner``."""
    if value is None:
        return 0.0
    h = default_horizon(estimator) if horizon is None else horizon
    weights = estimator.weights(h)
    probs = np.array(
        [partner.prob(t0 + dt, value, history) for dt in range(1, h + 1)]
    )
    return float(np.dot(probs, weights))


def heeb_join_batch(
    partner: StreamModel,
    t0: int,
    values: "np.ndarray | list[Value]",
    estimator: LifetimeEstimator,
    horizon: int | None = None,
    history: History | None = None,
) -> np.ndarray:
    """Vectorized :func:`heeb_join`: ``H`` for many candidate values.

    Materializes one conditional distribution per look-ahead step and
    evaluates all values against it, so the cost is ``O(horizon)``
    distribution queries instead of ``O(len(values) · horizon)`` scalar
    pmf calls.  ``None`` values get ``H = 0``.  Agrees with the scalar
    function up to floating-point summation order.
    """
    from .kernels import heeb_sweep

    h = default_horizon(estimator) if horizon is None else horizon
    weights = estimator.weights(h)
    none_mask = np.array([v is None for v in values], dtype=bool)
    safe = np.array([0 if v is None else int(v) for v in values], dtype=np.int64)
    probs = np.zeros((safe.size, h))
    for dt in range(1, h + 1):
        dist = partner.cond_dist(t0 + dt, history)
        probs[:, dt - 1] = dist.pmf_many(safe)
    out = heeb_sweep(probs, weights)
    out[none_mask] = 0.0
    return out


def heeb_cache_batch(
    reference: StreamModel,
    t0: int,
    values: "np.ndarray | list[Value]",
    estimator: LifetimeEstimator,
    horizon: int | None = None,
    history: History | None = None,
) -> np.ndarray:
    """Vectorized :func:`heeb_cache`: caching ``H`` for many values.

    The taboo first-reference dynamic program is inherently per-value
    (each value changes the taboo state), so this runs one DP per value
    and only vectorizes the final weighting; it exists so batch callers
    have an array-in/array-out entry point symmetric with
    :func:`heeb_join_batch`.
    """
    h = default_horizon(estimator) if horizon is None else horizon
    weights = estimator.weights(h)
    out = np.zeros(len(values))
    for i, v in enumerate(values):
        if v is None:
            continue
        first = first_reference_probs(reference, t0, int(v), h, history)
        out[i] = float(np.dot(first, weights))
    return out


def heeb_join_band(
    partner: StreamModel,
    t0: int,
    value: Value,
    band: int,
    estimator: LifetimeEstimator,
    horizon: int | None = None,
    history: History | None = None,
) -> float:
    """Band-join ``H_x``: per-step band match probabilities × ``L``."""
    if band < 0:
        raise ValueError("band must be nonnegative")
    if value is None:
        return 0.0
    h = default_horizon(estimator) if horizon is None else horizon
    weights = estimator.weights(h)
    v = int(value)
    probs = np.array(
        [
            sum(
                partner.prob(t0 + dt, v + offset, history)
                for offset in range(-band, band + 1)
            )
            for dt in range(1, h + 1)
        ]
    )
    return float(np.dot(probs, weights))


def heeb_cache(
    reference: StreamModel,
    t0: int,
    value: Value,
    estimator: LifetimeEstimator,
    horizon: int | None = None,
    history: History | None = None,
) -> float:
    """Caching-problem ``H_x`` for a database tuple referenced by ``reference``."""
    if value is None:
        return 0.0
    h = default_horizon(estimator) if horizon is None else horizon
    weights = estimator.weights(h)
    first = first_reference_probs(reference, t0, int(value), h, history)
    return float(np.dot(first, weights))
