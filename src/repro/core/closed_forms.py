"""Closed-form ECBs for linear trend + bounded uniform noise.

Section 5.3 and Appendix O derive the ECBs for the FLOOR scenario in
closed form, assuming both streams share the trend ``f(t) = t`` and have
zero-centered uniform noise windows ``[-w_R, w_R]`` and ``[-w_S, w_S]``
with ``w_R < w_S``.  Candidate tuples fall into five categories (R1, R2,
S1, S2, S3) by which side they come from and where their value sits
relative to the two moving windows.

These forms serve two purposes: they are exercised directly by the HEEB
strategy for trend streams, and they validate the generic Lemma-1
computation in tests.
"""

from __future__ import annotations

import numpy as np

from .ecb import ECB

__all__ = [
    "join_category",
    "join_ecb_linear_uniform",
    "cache_ecb_linear_uniform",
]


def join_category(side: str, value: int, t0: int, w_r: int, w_s: int) -> str:
    """Classify a candidate tuple into the Appendix-O category.

    ``side`` is the stream the tuple came *from* ("R" or "S"); both
    streams are assumed to follow ``f(t) = t``.
    """
    if side == "R":
        if value <= t0 - w_s:
            return "R1"
        if value <= t0 + w_r:
            return "R2"
        # Values ahead of both windows behave like R2 with delayed onset;
        # the paper's table stops at R2 because R cannot produce them
        # (its own window tops out at t0 + w_r), so flag them explicitly.
        raise ValueError(
            f"R tuple value {value} exceeds t0 + w_r = {t0 + w_r}; "
            "unreachable under the FLOOR generative model"
        )
    if side == "S":
        if value <= t0 - w_r:
            return "S1"
        if value <= t0 + w_r + 1:
            return "S2"
        if value <= t0 + w_s:
            return "S3"
        raise ValueError(
            f"S tuple value {value} exceeds t0 + w_s = {t0 + w_s}; "
            "unreachable under the FLOOR generative model"
        )
    raise ValueError(f"unknown side {side!r}")


def join_ecb_linear_uniform(
    side: str, value: int, t0: int, w_r: int, w_s: int, horizon: int
) -> ECB:
    """Appendix O: the joining ECB of a FLOOR candidate tuple.

    An R tuple joins future S arrivals (window half-width ``w_s``) and an
    S tuple joins future R arrivals (half-width ``w_r``); each partner
    arrival matches with probability ``1/(2w+1)`` while the tuple's value
    lies inside the partner's moving window.
    """
    category = join_category(side, value, t0, w_r, w_s)
    dts = np.arange(1, horizon + 1)

    if category in ("R1", "S1"):
        return ECB(np.zeros(horizon))

    if category == "R2":
        rate = 1.0 / (2 * w_s + 1)
        last = value - (t0 - w_s)  # Δt at which the S window passes value
        cumulative = rate * np.minimum(dts, last)
        return ECB(cumulative)

    if category == "S2":
        rate = 1.0 / (2 * w_r + 1)
        last = value - (t0 - w_r)
        cumulative = rate * np.minimum(dts, last)
        return ECB(cumulative)

    # S3: the R window has not reached the value yet; benefits start at
    # Δt = value − (t0 + w_r) and stop once the window passes.
    rate = 1.0 / (2 * w_r + 1)
    start = value - (t0 + w_r)
    last = value - (t0 - w_r)
    inside = np.clip(dts - start + 1, 0, last - start + 1)
    return ECB(rate * inside)


def cache_ecb_linear_uniform(
    value: int,
    t0: int,
    w: int,
    horizon: int,
    trend_offset: int = 0,
) -> ECB:
    """Section 5.3 (caching): ECB of a database tuple under FLOOR reference.

    The reference stream follows ``f(t) = t + trend_offset`` with uniform
    noise in ``[-w, w]``.  Category 1 tuples (window already passed) have
    zero ECB; Category 2 tuples accrue ``1 − (1 − 1/(2w+1))^Δt`` until the
    window moves beyond them at ``t_x = min{t : value < f(t) − w}``.
    """
    f_t0 = t0 + trend_offset
    if value < f_t0 - w:
        return ECB(np.zeros(horizon))
    q = 1.0 / (2 * w + 1)
    # First time the window passes the value: value < f(t) - w.
    t_x = value + w + 1 - trend_offset
    dts = np.arange(1, horizon + 1)
    effective = np.minimum(dts, max(t_x - t0 - 1, 0))
    cumulative = 1.0 - (1.0 - q) ** effective
    return ECB(cumulative)
