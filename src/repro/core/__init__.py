"""Core theory: ECBs, dominance, HEEB, and their efficient computation.

This subpackage is the paper's primary contribution (Sections 4 and part
of 5): expected cumulative benefit functions, the dominance tests that
identify provably optimal replacement decisions, the HEEB heuristic with
its lifetime estimators, and the incremental / precomputed evaluation
strategies of Section 4.4.
"""

from .closed_forms import (
    cache_ecb_linear_uniform,
    join_category,
    join_ecb_linear_uniform,
)
from .dominance import (
    comparable,
    dominance_matrix,
    dominates,
    find_dominated_subset,
    strongly_dominates,
)
from .ecb import ECB, ecb_cache, ecb_join, ecb_join_band, windowed_ecb
from .first_reference import (
    ar1_transition_matrix,
    first_reference_ar1,
    first_reference_independent,
    first_reference_monte_carlo,
    first_reference_probs,
    first_reference_random_walk,
)
from .heeb import (
    default_horizon,
    heeb_cache,
    heeb_from_ecb,
    heeb_join,
    heeb_join_band,
)
from .incremental import (
    IncrementalHeebTracker,
    cache_step,
    join_step,
    value_shifted_time,
)
from .lifetime import (
    LExp,
    LFixed,
    LInf,
    LInv,
    LifetimeEstimator,
    WindowedLExp,
    alpha_for_mean_lifetime,
    check_lifetime_properties,
    mean_lifetime_for_alpha,
)
from .precompute import (
    H1Table,
    H2Surface,
    ar1_cache_heeb_values,
    ar1_h2_cache,
    ar1_h2_join,
    ar1_stationary_bucket_prob,
    load_tables,
    random_walk_h1_cache,
    random_walk_h1_join,
    save_tables,
)
from .tuples import CacheState, StreamTuple, TupleFactory

__all__ = [
    "CacheState",
    "ECB",
    "H1Table",
    "H2Surface",
    "IncrementalHeebTracker",
    "LExp",
    "LFixed",
    "LInf",
    "LInv",
    "LifetimeEstimator",
    "StreamTuple",
    "TupleFactory",
    "WindowedLExp",
    "alpha_for_mean_lifetime",
    "ar1_cache_heeb_values",
    "ar1_h2_cache",
    "ar1_h2_join",
    "ar1_stationary_bucket_prob",
    "ar1_transition_matrix",
    "cache_ecb_linear_uniform",
    "cache_step",
    "check_lifetime_properties",
    "comparable",
    "default_horizon",
    "dominance_matrix",
    "dominates",
    "ecb_cache",
    "ecb_join",
    "ecb_join_band",
    "find_dominated_subset",
    "first_reference_ar1",
    "first_reference_independent",
    "first_reference_monte_carlo",
    "first_reference_probs",
    "first_reference_random_walk",
    "heeb_cache",
    "heeb_from_ecb",
    "heeb_join",
    "heeb_join_band",
    "load_tables",
    "join_category",
    "join_ecb_linear_uniform",
    "join_step",
    "mean_lifetime_for_alpha",
    "random_walk_h1_cache",
    "random_walk_h1_join",
    "save_tables",
    "strongly_dominates",
    "value_shifted_time",
    "windowed_ecb",
]
