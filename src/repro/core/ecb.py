"""Expected cumulative benefit (ECB) functions -- Section 4.1.

At current time ``t0``, the ECB of a candidate tuple ``x`` is

    ``B_x(Δt) = E[# results x generates during (t0, t0 + Δt]]``.

* Joining (Lemma 1): ``B_x(Δt) = Σ_{t=t0+1..t0+Δt} Pr{X^R_t = v_x | x̄_t0}``
  -- a running sum of per-step match probabilities against the partner
  stream ``R``.
* Caching (Corollary 1): ``B_x(Δt) = 1 − Pr{no reference to v_x during
  (t0, t0+Δt] | x̄_t0}`` -- the probability that the database tuple is
  referenced at all in the period; equivalently the running sum of
  *first-reference* probabilities.  Reference-stream tuples have ECB ≡ 0.

ECBs are materialized over a finite horizon ``Δt = 1..H``; every consumer
(dominance tests, HEEB) picks a horizon past which its weights are
negligible.

The sliding-window variant of Section 7 clips a tuple's ECB once the tuple
itself leaves the window: for a tuple that arrived at ``t_x`` with window
``w``, benefits stop accruing after ``Δt = t_x + w − t0``.
"""

from __future__ import annotations

import numpy as np

from ..streams.base import History, StreamModel, Value
from .first_reference import first_reference_probs

__all__ = [
    "ECB",
    "ecb_join",
    "ecb_join_batch",
    "ecb_join_band",
    "ecb_cache",
    "windowed_ecb",
]


class ECB:
    """A materialized expected-cumulative-benefit function.

    Wraps the nondecreasing array ``B(1), B(2), ..., B(H)``.
    """

    __slots__ = ("_cumulative",)

    def __init__(self, cumulative: np.ndarray):
        arr = np.asarray(cumulative, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("ECB needs a nonempty 1-D cumulative array")
        if np.any(np.diff(arr) < -1e-12):
            raise ValueError("ECB must be nondecreasing")
        if arr[0] < -1e-12:
            raise ValueError("ECB must be nonnegative")
        self._cumulative = arr

    @classmethod
    def from_increments(cls, increments: np.ndarray) -> "ECB":
        """Build from per-step expected benefits ``b(1), ..., b(H)``."""
        return cls(np.cumsum(np.asarray(increments, dtype=np.float64)))

    @property
    def horizon(self) -> int:
        return int(self._cumulative.size)

    @property
    def cumulative(self) -> np.ndarray:
        view = self._cumulative.view()
        view.flags.writeable = False
        return view

    def __call__(self, dt: int) -> float:
        """``B(Δt)``; clamped to the final value beyond the horizon."""
        if dt < 1:
            raise ValueError("ECB is defined for Δt >= 1")
        idx = min(dt, self.horizon) - 1
        return float(self._cumulative[idx])

    def increments(self) -> np.ndarray:
        """Per-step expected benefits ``b(Δt) = B(Δt) − B(Δt−1)``."""
        return np.diff(self._cumulative, prepend=0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ECB(horizon={self.horizon}, total={self._cumulative[-1]:.4f})"


def ecb_join(
    partner: StreamModel,
    t0: int,
    value: Value,
    horizon: int,
    history: History | None = None,
) -> ECB:
    """Lemma 1: the joining-problem ECB of a tuple with the given value.

    ``partner`` is the stream the tuple joins against (a tuple from ``S``
    joins arrivals of ``R``, and vice versa).
    """
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    if value is None:
        return ECB(np.zeros(horizon))
    probs = np.array(
        [partner.prob(t0 + dt, value, history) for dt in range(1, horizon + 1)]
    )
    return ECB.from_increments(probs)


def ecb_join_batch(
    partner: StreamModel,
    t0: int,
    values: "np.ndarray | list[Value]",
    horizon: int,
    history: History | None = None,
) -> np.ndarray:
    """Vectorized Lemma 1: joining ECBs for many values at once.

    Returns the cumulative array ``B(1..horizon)`` for every entry of
    ``values`` as a ``(len(values), horizon)`` matrix.  Row ``i`` equals
    ``ecb_join(partner, t0, values[i], horizon, history).cumulative``
    exactly (the per-step probabilities come from the same pmf lookups
    and are accumulated in the same order); ``None`` ("−") values yield
    all-zero rows.  One conditional distribution is materialized per
    look-ahead step instead of one pmf call per (value, step) pair,
    which is what makes the batch engine's scoring loop array-shaped.
    """
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    none_mask = np.array([v is None for v in values], dtype=bool)
    safe = np.array([0 if v is None else int(v) for v in values], dtype=np.int64)
    increments = np.zeros((safe.size, horizon))
    for dt in range(1, horizon + 1):
        dist = partner.cond_dist(t0 + dt, history)
        increments[:, dt - 1] = dist.pmf_many(safe)
    increments[none_mask, :] = 0.0
    return np.cumsum(increments, axis=1)


def ecb_join_band(
    partner: StreamModel,
    t0: int,
    value: Value,
    band: int,
    horizon: int,
    history: History | None = None,
) -> ECB:
    """Band-join generalization of Lemma 1 (the paper's future work).

    Under the non-equality predicate ``|X^R_t − v_x| ≤ band``, the
    per-step match probability becomes the partner pmf mass over the
    band:  ``b(Δt) = Pr{X^R_{t0+Δt} ∈ [v_x − band, v_x + band]}``.
    ``band=0`` reduces to :func:`ecb_join`.
    """
    if band < 0:
        raise ValueError("band must be nonnegative")
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    if value is None:
        return ECB(np.zeros(horizon))
    v = int(value)
    increments = np.zeros(horizon)
    for i, dt in enumerate(range(1, horizon + 1)):
        increments[i] = sum(
            partner.prob(t0 + dt, v + offset, history)
            for offset in range(-band, band + 1)
        )
    return ECB.from_increments(increments)


def ecb_cache(
    reference: StreamModel,
    t0: int,
    value: Value,
    horizon: int,
    history: History | None = None,
) -> ECB:
    """Corollary 1: the caching-problem ECB of a database tuple.

    ``B_x(Δt) = Pr{v_x referenced during (t0, t0+Δt]}``, the cumulative
    first-reference probability.  Handles independent reference streams
    exactly via the product form and Markov streams (random walk, AR(1))
    via exact dynamic programming; see
    :mod:`repro.core.first_reference`.

    Reference-stream tuples themselves have ECB ≡ 0 (they can never join a
    future supply tuple); model that by passing ``value=None``.
    """
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    if value is None:
        return ECB(np.zeros(horizon))
    first = first_reference_probs(reference, t0, int(value), horizon, history)
    return ECB(np.cumsum(first))


def windowed_ecb(ecb: ECB, arrival: int, t0: int, window: int) -> ECB:
    """Section 7: clip an ECB under sliding-window join semantics.

    A tuple that arrived at ``arrival`` participates in joins only while
    ``t ∈ [t' − window, t']``; its benefit stops accruing after
    ``Δt = arrival + window − t0``.  If it already fell out of the window
    the ECB is identically zero.
    """
    if window < 0:
        raise ValueError("window must be nonnegative")
    cutoff = arrival + window - t0
    if cutoff <= 0:
        return ECB(np.zeros(ecb.horizon))
    cumulative = ecb.cumulative.copy()
    if cutoff < ecb.horizon:
        cumulative[cutoff:] = cumulative[cutoff - 1]
    return ECB(cumulative)
