"""Lifetime estimators ``L_x(Δt)`` for HEEB -- Section 4.3.

``L_x(Δt)`` estimates the probability that a candidate tuple is still
cached ``Δt`` steps from now.  The paper requires five properties:

1. ``0 ≤ L(Δt) ≤ 1``;
2. ``L`` is non-increasing;
3. the HEEB sum converges (sufficient: ``Σ L(Δt)`` converges);
4. if ``B_x`` dominates ``B_y`` then ``L_x`` dominates ``L_y`` (trivially
   satisfied when one shared ``L`` is used for all candidates, as all
   strategies here do);
5. if ``B_x`` strongly dominates ``B_y`` then ``L_x(1) > 0``.

The catalog from the paper's table:

* ``L_fixed``: 1 up to a fixed ``ΔT`` then 0 -- assume replacement after
  exactly ``ΔT`` steps, giving ``H = B(ΔT)``;
* ``L_inf``: constantly 1 -- ``H = lim B(Δt)``, the probability of any
  future reference (converges for caching problems only);
* ``L_inv``: ``1/Δt`` -- expected inverse waiting time (caching only);
* ``L_exp``: ``e^(−Δt/α)`` -- exponentially decaying survival; the
  paper's choice because it converges and supports incremental
  computation (Section 4.4);
* ``WindowedLExp``: ``L_exp`` forced to 0 once the tuple leaves a sliding
  window (Section 7).
"""

from __future__ import annotations

import abc
import math

import numpy as np

__all__ = [
    "LifetimeEstimator",
    "LFixed",
    "LInf",
    "LInv",
    "LExp",
    "WindowedLExp",
    "alpha_for_mean_lifetime",
    "mean_lifetime_for_alpha",
    "check_lifetime_properties",
]


class LifetimeEstimator(abc.ABC):
    """A survival-probability estimate ``L(Δt)`` for ``Δt ≥ 1``."""

    #: Whether ``Σ_{Δt≥1} L(Δt)`` converges, making the HEEB sum converge
    #: for any (bounded-increment) ECB, not just caching ECBs.
    converges: bool = False

    @abc.abstractmethod
    def __call__(self, dt: int) -> float:
        """``L(Δt)``."""

    def weights(self, horizon: int) -> np.ndarray:
        """Vectorized ``[L(1), ..., L(horizon)]``."""
        return np.array([self(dt) for dt in range(1, horizon + 1)])

    def suggested_horizon(self, tol: float = 1e-9) -> int | None:
        """A horizon past which ``L`` is below ``tol`` (None if unbounded)."""
        return None


class LFixed(LifetimeEstimator):
    """``L(Δt) = 1`` for ``Δt ≤ ΔT``, else 0: ``H = B(ΔT)``."""

    converges = True

    def __init__(self, delta_t: int):
        if delta_t < 1:
            raise ValueError("ΔT must be >= 1")
        self.delta_t = int(delta_t)

    def __call__(self, dt: int) -> float:
        return 1.0 if 1 <= dt <= self.delta_t else 0.0

    def suggested_horizon(self, tol: float = 1e-9) -> int:
        return self.delta_t


class LInf(LifetimeEstimator):
    """``L ≡ 1``: ``H`` is the probability of any future reference.

    Only guaranteed to converge for caching ECBs (which saturate at 1);
    callers must supply an explicit horizon.
    """

    converges = False

    def __call__(self, dt: int) -> float:
        return 1.0 if dt >= 1 else 0.0


class LInv(LifetimeEstimator):
    """``L(Δt) = 1/Δt``: ``H`` is the expected inverse waiting time.

    Like ``L_inf``, convergence is guaranteed for caching problems only.
    Not amenable to time-incremental computation (Section 4.4.1).
    """

    converges = False

    def __call__(self, dt: int) -> float:
        if dt < 1:
            return 0.0
        return 1.0 / dt


class LExp(LifetimeEstimator):
    """``L(Δt) = e^(−Δt/α)``: the paper's estimator of choice.

    ``α`` calibrates the predicted mean lifetime
    ``1 / (1 − e^(−1/α))``; see :func:`alpha_for_mean_lifetime`.
    """

    converges = True

    def __init__(self, alpha: float):
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = float(alpha)

    def __call__(self, dt: int) -> float:
        if dt < 1:
            return 0.0
        return math.exp(-dt / self.alpha)

    def weights(self, horizon: int) -> np.ndarray:
        dts = np.arange(1, horizon + 1)
        return np.exp(-dts / self.alpha)

    def suggested_horizon(self, tol: float = 1e-9) -> int:
        return max(1, int(math.ceil(self.alpha * math.log(1.0 / tol))))


class WindowedLExp(LifetimeEstimator):
    """Section 7: ``L_exp`` clipped to a tuple's remaining window life.

    ``remaining`` is the number of future steps the tuple stays inside the
    sliding window; ``L`` is zero beyond it.
    """

    converges = True

    def __init__(self, alpha: float, remaining: int):
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if remaining < 0:
            raise ValueError("remaining must be nonnegative")
        self.alpha = float(alpha)
        self.remaining = int(remaining)

    def __call__(self, dt: int) -> float:
        if dt < 1 or dt > self.remaining:
            return 0.0
        return math.exp(-dt / self.alpha)

    def suggested_horizon(self, tol: float = 1e-9) -> int:
        return max(1, self.remaining)


def alpha_for_mean_lifetime(mean_lifetime: float) -> float:
    """Solve ``1 / (1 − e^(−1/α)) = mean_lifetime`` for ``α``.

    This is the calibration rule of Section 4.3: pick ``α`` so that the
    lifetime predicted by ``L_exp`` matches the estimated or observed
    average lifetime of a cached tuple.
    """
    if mean_lifetime <= 1.0:
        raise ValueError("mean lifetime must exceed one step")
    return -1.0 / math.log(1.0 - 1.0 / mean_lifetime)


def mean_lifetime_for_alpha(alpha: float) -> float:
    """The mean lifetime ``1 / (1 − e^(−1/α))`` predicted by ``L_exp``."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    return 1.0 / (1.0 - math.exp(-1.0 / alpha))


def check_lifetime_properties(
    estimator: LifetimeEstimator, horizon: int = 200
) -> list[str]:
    """Numerically check properties 1-2 over a horizon; return violations."""
    problems: list[str] = []
    weights = estimator.weights(horizon)
    if np.any(weights < -1e-12) or np.any(weights > 1.0 + 1e-12):
        problems.append("property 1 violated: L outside [0, 1]")
    if np.any(np.diff(weights) > 1e-12):
        problems.append("property 2 violated: L increases somewhere")
    return problems
