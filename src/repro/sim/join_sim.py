"""Two-stream equijoin simulator under the MAX-subset metric.

Implements the joining problem of Section 2: at every step each stream
produces one tuple; new arrivals join against cached tuples of the other
stream; then the replacement policy chooses which tuples to discard so the
cache stays within its capacity.  The performance metric is the number of
result tuples produced (after an optional warm-up period, per Section
6.2), which is what every algorithm in the paper tries to maximize in
expectation.

Sliding-window semantics (Section 7) are supported via ``window``: a tuple
that arrived at ``t_x`` participates in joins only while the current time
is at most ``t_x + window``; expired tuples are removed from the cache
automatically (keeping them is never useful, so this does not restrict
any policy).

Accounting choices (constant across policies, hence shape-preserving):

* a new R and a new S tuple arriving at the same step do **not** join
  each other (Section 3.1 ignores same-step joins because they happen
  regardless of replacement decisions);
* "−" tuples (``value is None``) join nothing and are not cacheable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..obs.recorder import NULL_RECORDER, Recorder
from ..policies.base import ReplacementPolicy, WindowOracle
from ..streams.base import StreamModel, Value
from .engine import RunResult
from .step import join_step, make_join_state

__all__ = ["JoinRunResult", "JoinSimulator"]


@dataclass
class JoinRunResult(RunResult):
    """Outcome of one simulated run."""

    total_results: int
    results_after_warmup: int
    steps: int
    warmup: int
    cache_size: int
    #: Per-step count of cached R tuples (after that step's evictions).
    r_occupancy: np.ndarray
    #: Per-step total cache occupancy.
    occupancy: np.ndarray

    @property
    def r_fraction(self) -> np.ndarray:
        """Fraction of the cache capacity held by R tuples at each step."""
        return self.r_occupancy / max(self.cache_size, 1)

    @property
    def primary_metric(self) -> float:
        """Join results produced after the warm-up window."""
        return float(self.results_after_warmup)


class JoinSimulator:
    """Drives one replacement policy over a pair of value sequences.

    Parameters
    ----------
    cache_size:
        Capacity ``k`` shared by tuples from both streams.
    policy:
        The replacement policy under test.
    warmup:
        Results produced during the first ``warmup`` steps are excluded
        from ``results_after_warmup`` (the paper uses at least 4× the
        cache size).
    window:
        Optional sliding-window length (Section 7 semantics).
    band:
        Non-equality band-join generalization: a new arrival with value
        ``v`` joins cached partner tuples with values in ``[v − band,
        v + band]``.  ``0`` (the default) is the paper's equijoin.
    r_model / s_model:
        Stream models passed through to model-aware policies.
    window_oracle:
        Value-window knowledge passed through to window-aware baselines.
    recorder:
        Observability sink (:mod:`repro.obs`).  The default no-op
        recorder keeps the loop exactly as fast as an uninstrumented
        one; a :class:`~repro.obs.recorder.CounterRecorder` collects
        eviction/arrival/result counters, a
        :class:`~repro.obs.trace.TraceRecorder` additionally streams
        per-step events.  When the recorder is enabled the run's
        counter snapshot is attached to the result's ``metrics``.
    """

    def __init__(
        self,
        cache_size: int,
        policy: ReplacementPolicy,
        warmup: int = 0,
        window: int | None = None,
        band: int = 0,
        r_model: StreamModel | None = None,
        s_model: StreamModel | None = None,
        window_oracle: WindowOracle | None = None,
        recorder: Recorder = NULL_RECORDER,
    ):
        """Validate and bind the join-run parameters (see class docs)."""
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if warmup < 0:
            raise ValueError("warmup must be nonnegative")
        if window is not None and window < 0:
            raise ValueError("window must be nonnegative")
        if band < 0:
            raise ValueError("band must be nonnegative")
        self._cache_size = cache_size
        self._policy = policy
        self._warmup = warmup
        self._window = window
        self._band = band
        self._r_model = r_model
        self._s_model = s_model
        self._window_oracle = window_oracle
        self._recorder = recorder

    def run(
        self, r_values: Sequence[Value], s_values: Sequence[Value]
    ) -> JoinRunResult:
        """Simulate the join over the given value sequences.

        The per-step semantics live in :func:`repro.sim.step.join_step`
        (shared with the :mod:`repro.serve` event loop); this method is
        the finite driver: it feeds the pre-sampled values step by step
        and aggregates warmup-aware metrics and occupancy series.
        """
        n = min(len(r_values), len(s_values))
        state = make_join_state(
            self._cache_size,
            self._policy,
            window=self._window,
            band=self._band,
            r_model=self._r_model,
            s_model=self._s_model,
            window_oracle=self._window_oracle,
            recorder=self._recorder,
        )

        after_warmup = 0
        r_occupancy = np.zeros(n, dtype=np.int64)
        occupancy = np.zeros(n, dtype=np.int64)

        for t in range(n):
            outcome = join_step(state, t, r_values[t], s_values[t])
            if t >= self._warmup:
                after_warmup += outcome.results
            r_occupancy[t] = outcome.r_occupancy
            occupancy[t] = outcome.occupancy

        result = JoinRunResult(
            total_results=state.total_results,
            results_after_warmup=after_warmup,
            steps=n,
            warmup=self._warmup,
            cache_size=self._cache_size,
            r_occupancy=r_occupancy,
            occupancy=occupancy,
        )
        if self._recorder.enabled:
            result.metrics = self._recorder.snapshot()
        return result
