"""Two-stream equijoin simulator under the MAX-subset metric.

Implements the joining problem of Section 2: at every step each stream
produces one tuple; new arrivals join against cached tuples of the other
stream; then the replacement policy chooses which tuples to discard so the
cache stays within its capacity.  The performance metric is the number of
result tuples produced (after an optional warm-up period, per Section
6.2), which is what every algorithm in the paper tries to maximize in
expectation.

Sliding-window semantics (Section 7) are supported via ``window``: a tuple
that arrived at ``t_x`` participates in joins only while the current time
is at most ``t_x + window``; expired tuples are removed from the cache
automatically (keeping them is never useful, so this does not restrict
any policy).

Accounting choices (constant across policies, hence shape-preserving):

* a new R and a new S tuple arriving at the same step do **not** join
  each other (Section 3.1 ignores same-step joins because they happen
  regardless of replacement decisions);
* "−" tuples (``value is None``) join nothing and are not cacheable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.tuples import CacheState, StreamTuple, TupleFactory
from ..obs.recorder import NULL_RECORDER, Recorder
from ..policies.base import (
    PolicyContext,
    ReplacementPolicy,
    WindowOracle,
    validate_victims,
)
from ..streams.base import StreamModel, Value
from .engine import RunResult


def _victim_records(victims: Sequence[StreamTuple]) -> list[dict]:
    """JSON-ready ``{uid, side, value, arrived}`` records for a trace."""
    return [
        {"uid": v.uid, "side": v.side, "value": v.value, "arrived": v.arrival}
        for v in victims
    ]

__all__ = ["JoinRunResult", "JoinSimulator"]


@dataclass
class JoinRunResult(RunResult):
    """Outcome of one simulated run."""

    total_results: int
    results_after_warmup: int
    steps: int
    warmup: int
    cache_size: int
    #: Per-step count of cached R tuples (after that step's evictions).
    r_occupancy: np.ndarray
    #: Per-step total cache occupancy.
    occupancy: np.ndarray

    @property
    def r_fraction(self) -> np.ndarray:
        """Fraction of the cache capacity held by R tuples at each step."""
        return self.r_occupancy / max(self.cache_size, 1)

    @property
    def primary_metric(self) -> float:
        """Join results produced after the warm-up window."""
        return float(self.results_after_warmup)


class JoinSimulator:
    """Drives one replacement policy over a pair of value sequences.

    Parameters
    ----------
    cache_size:
        Capacity ``k`` shared by tuples from both streams.
    policy:
        The replacement policy under test.
    warmup:
        Results produced during the first ``warmup`` steps are excluded
        from ``results_after_warmup`` (the paper uses at least 4× the
        cache size).
    window:
        Optional sliding-window length (Section 7 semantics).
    band:
        Non-equality band-join generalization: a new arrival with value
        ``v`` joins cached partner tuples with values in ``[v − band,
        v + band]``.  ``0`` (the default) is the paper's equijoin.
    r_model / s_model:
        Stream models passed through to model-aware policies.
    window_oracle:
        Value-window knowledge passed through to window-aware baselines.
    recorder:
        Observability sink (:mod:`repro.obs`).  The default no-op
        recorder keeps the loop exactly as fast as an uninstrumented
        one; a :class:`~repro.obs.recorder.CounterRecorder` collects
        eviction/arrival/result counters, a
        :class:`~repro.obs.trace.TraceRecorder` additionally streams
        per-step events.  When the recorder is enabled the run's
        counter snapshot is attached to the result's ``metrics``.
    """

    def __init__(
        self,
        cache_size: int,
        policy: ReplacementPolicy,
        warmup: int = 0,
        window: int | None = None,
        band: int = 0,
        r_model: StreamModel | None = None,
        s_model: StreamModel | None = None,
        window_oracle: WindowOracle | None = None,
        recorder: Recorder = NULL_RECORDER,
    ):
        """Validate and bind the join-run parameters (see class docs)."""
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if warmup < 0:
            raise ValueError("warmup must be nonnegative")
        if window is not None and window < 0:
            raise ValueError("window must be nonnegative")
        if band < 0:
            raise ValueError("band must be nonnegative")
        self._cache_size = cache_size
        self._policy = policy
        self._warmup = warmup
        self._window = window
        self._band = band
        self._r_model = r_model
        self._s_model = s_model
        self._window_oracle = window_oracle
        self._recorder = recorder

    def run(
        self, r_values: Sequence[Value], s_values: Sequence[Value]
    ) -> JoinRunResult:
        """Simulate the join over the given value sequences."""
        n = min(len(r_values), len(s_values))
        cache = CacheState()
        factory = TupleFactory()
        # Hoist the recorder flags: disabled runs pay one bool check per
        # guarded block, nothing else (the zero-overhead contract).
        rec = self._recorder
        rec_on = rec.enabled
        rec_trace = rec.trace
        policy_name = self._policy.name
        ctx = PolicyContext(
            kind="join",
            time=-1,
            cache_size=self._cache_size,
            r_model=self._r_model,
            s_model=self._s_model,
            window=self._window,
            window_oracle=self._window_oracle,
            recorder=rec,
        )
        self._policy.reset(ctx)

        total = 0
        after_warmup = 0
        r_occupancy = np.zeros(n, dtype=np.int64)
        occupancy = np.zeros(n, dtype=np.int64)

        for t in range(n):
            ctx.time = t
            r_val = r_values[t]
            s_val = s_values[t]
            ctx.record_arrival("R", r_val)
            ctx.record_arrival("S", s_val)
            if rec_on:
                rec.count("sim.steps")
                for side, val in (("R", r_val), ("S", s_val)):
                    rec.count(
                        "arrivals.null" if val is None else f"arrivals.{side}"
                    )
                    if rec_trace:
                        rec.event("arrival", t, side=side, value=val)

            # Sliding-window expiry: free removal of dead tuples.
            if self._window is not None:
                expired = cache.expired(t - self._window)
                if expired and rec_on:
                    rec.count("evict.window_expired", len(expired))
                    if rec_trace:
                        rec.event(
                            "evict",
                            t,
                            policy=policy_name,
                            victims=_victim_records(expired),
                            expired=True,
                        )
                for dead in expired:
                    cache.remove(dead)
                    self._policy.on_evict(dead, t)

            # New arrivals join cached partner tuples.
            step_results = 0
            for side, val in (("R", r_val), ("S", s_val)):
                partner_side = "S" if side == "R" else "R"
                for match in cache.matching_band(partner_side, val, self._band):
                    step_results += 1
                    self._policy.on_reference(match, t)
            total += step_results
            if t >= self._warmup:
                after_warmup += step_results

            # Candidate set: cache plus joinable new arrivals.
            new_tuples = []
            if r_val is not None:
                new_tuples.append(factory.make("R", r_val, t))
            if s_val is not None:
                new_tuples.append(factory.make("S", s_val, t))
            candidates = cache.tuples() + new_tuples

            n_evict = max(0, len(candidates) - self._cache_size)
            victims = self._select_victims(candidates, n_evict, ctx)
            if victims and rec_on:
                rec.count(f"evict.{policy_name}", len(victims))
                if rec_trace:
                    rec.event(
                        "evict",
                        t,
                        policy=policy_name,
                        victims=_victim_records(victims),
                    )

            victim_uids = {v.uid for v in victims}
            for tup in victims:
                if tup in cache:
                    cache.remove(tup)
                self._policy.on_evict(tup, t)
            for tup in new_tuples:
                if tup.uid not in victim_uids:
                    cache.add(tup)
                    self._policy.on_admit(tup, t)

            r_occupancy[t] = cache.count_side("R")
            occupancy[t] = len(cache)
            if rec_on:
                if step_results:
                    rec.count("join.results", step_results)
                rec.series("cache.occupancy", t, int(occupancy[t]))
                rec.series("join.results.cum", t, total)
                if rec_trace:
                    rec.event("step", t, results=step_results)
                    rec.event(
                        "occupancy",
                        t,
                        total=int(occupancy[t]),
                        r=int(r_occupancy[t]),
                    )

        result = JoinRunResult(
            total_results=total,
            results_after_warmup=after_warmup,
            steps=n,
            warmup=self._warmup,
            cache_size=self._cache_size,
            r_occupancy=r_occupancy,
            occupancy=occupancy,
        )
        if rec_on:
            result.metrics = rec.snapshot()
        return result

    def _select_victims(
        self,
        candidates: list[StreamTuple],
        n_evict: int,
        ctx: PolicyContext,
    ) -> list[StreamTuple]:
        victims = self._policy.select_victims(candidates, n_evict, ctx)
        return validate_victims(self._policy.name, candidates, victims, n_evict)
