"""Multi-run experiment execution with seeded stream generation.

The paper's synthetic experiments average 50 runs of 5000-tuple streams
(Section 6.2).  This module provides path generation (per-run seeds) and
the experiment entry points, all built on the engine layer of
:mod:`repro.sim.engine`: callers describe the problem with an
:class:`~repro.sim.engine.ExperimentSpec` (or use the thin
``run_join_experiment`` / ``run_cache_experiment`` shims, kept for one
release) and the capability-negotiated resolver picks the execution tier
— scalar, vectorized batch, or process-parallel — recording the engine
actually used on the result.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Sequence, Union

import numpy as np

from ..obs.recorder import NULL_RECORDER, Recorder
from ..policies.base import ReplacementPolicy, WindowOracle
from ..streams.base import StreamModel, Value
from .cache_sim import CacheRunResult
from .engine import Engine, ExperimentSpec, RunResult, select_engine, spawn_rng
from .join_sim import JoinRunResult
from .multi_join import MultiJoinRunResult

__all__ = [
    "ExperimentResult",
    "JoinExperimentResult",
    "CacheExperimentResult",
    "MultiJoinExperimentResult",
    "run_experiment",
    "run_join_experiment",
    "run_cache_experiment",
    "run_multi_join_experiment",
    "generate_paths",
    "generate_reference_paths",
]


# ----------------------------------------------------------------------
# Aggregated results
# ----------------------------------------------------------------------
@dataclass
class ExperimentResult:
    """Aggregated outcome of one policy across independent trials.

    ``engine_used`` names the execution tier that actually ran the
    trials (``"scalar"``, ``"batch"``, ``"parallel"``, ...), which the
    old silent-fallback dispatch never exposed.  ``metrics`` is the
    :mod:`repro.obs` counter/timer snapshot aggregated over all trials
    when the experiment ran with an enabled recorder, else ``None``.
    """

    policy_name: str
    per_run: list[RunResult] = field(default_factory=list)
    engine_used: str = "scalar"
    metrics: dict | None = None

    @property
    def mean_metric(self) -> float:
        """Mean of the per-trial primary metric (results / hits)."""
        return float(np.mean([r.primary_metric for r in self.per_run]))


@dataclass
class JoinExperimentResult(ExperimentResult):
    """Aggregated joining results of one policy across runs."""

    per_run: list[JoinRunResult] = field(default_factory=list)

    @property
    def mean_results(self) -> float:
        """Mean post-warmup join results across trials."""
        return float(
            np.mean([r.results_after_warmup for r in self.per_run])
        )

    @property
    def std_results(self) -> float:
        """Standard deviation of post-warmup join results across trials."""
        return float(np.std([r.results_after_warmup for r in self.per_run]))

    def mean_r_fraction(self) -> np.ndarray:
        """Per-step fraction of cache held by R tuples, averaged over runs."""
        return np.mean([r.r_fraction for r in self.per_run], axis=0)


@dataclass
class CacheExperimentResult(ExperimentResult):
    """Aggregated caching results of one policy across runs."""

    per_run: list[CacheRunResult] = field(default_factory=list)

    @property
    def mean_hits(self) -> float:
        """Mean post-warmup cache hits across trials."""
        return float(np.mean([r.hits_after_warmup for r in self.per_run]))

    @property
    def std_hits(self) -> float:
        """Standard deviation of post-warmup cache hits across trials."""
        return float(np.std([r.hits_after_warmup for r in self.per_run]))

    @property
    def mean_misses(self) -> float:
        """Mean post-warmup cache misses across trials."""
        return float(np.mean([r.misses_after_warmup for r in self.per_run]))

    @property
    def mean_hit_rate(self) -> float:
        """Mean per-trial hit rate (hits / observations)."""
        return float(np.mean([r.hit_rate for r in self.per_run]))


@dataclass
class MultiJoinExperimentResult(ExperimentResult):
    """Aggregated multi-join results of one policy across runs."""

    per_run: list[MultiJoinRunResult] = field(default_factory=list)

    @property
    def mean_results(self) -> float:
        """Mean post-warmup multi-join results across trials."""
        return float(
            np.mean([r.results_after_warmup for r in self.per_run])
        )


_RESULT_TYPES: dict[str, type[ExperimentResult]] = {
    "join": JoinExperimentResult,
    "cache": CacheExperimentResult,
    "multi_join": MultiJoinExperimentResult,
}


# ----------------------------------------------------------------------
# Path generation
# ----------------------------------------------------------------------
def generate_paths(
    r_model: StreamModel,
    s_model: StreamModel,
    length: int,
    n_runs: int,
    seed: int,
) -> list[tuple[list[Value], list[Value]]]:
    """Draw ``n_runs`` independent stream-pair realizations.

    Per-run seeds derive through :func:`~repro.sim.engine.spawn_seed`
    (the one seed-spawning scheme shared with the batch generators and
    the :mod:`repro.serve` replay client); R is drawn before S from the
    same per-run generator.
    """
    paths = []
    for run in range(n_runs):
        rng = spawn_rng(seed, run)
        paths.append(
            (r_model.sample_path(length, rng), s_model.sample_path(length, rng))
        )
    return paths


def generate_reference_paths(
    model: StreamModel,
    length: int,
    n_runs: int,
    seed: int,
) -> list[list[Value]]:
    """Draw ``n_runs`` independent reference-stream realizations.

    Seeds derive through :func:`~repro.sim.engine.spawn_seed`, like
    :func:`generate_paths`.
    """
    return [
        model.sample_path(length, spawn_rng(seed, run))
        for run in range(n_runs)
    ]


# ----------------------------------------------------------------------
# The canonical entry point
# ----------------------------------------------------------------------
#: One-time warning dedup for native-kernel requests without numba.
_NATIVE_WARNED = False


def run_experiment(
    spec: ExperimentSpec,
    policy_factory: Callable[[], ReplacementPolicy],
    data: Sequence,
    engine: Union[str, Engine, None] = None,
    recorder: Recorder = NULL_RECORDER,
    native: bool | None = None,
) -> ExperimentResult:
    """Run one policy over pre-sampled trial data on the best engine.

    ``policy_factory`` builds a fresh policy instance per trial so that
    per-run state (frequency counters, RNG streams) never leaks across
    runs.  ``engine`` is a preference, not a command: capability
    negotiation (:func:`~repro.sim.engine.select_engine`) falls back to
    the scalar reference tier — with a one-time logged warning — when the
    preferred engine does not support the (spec, policy) combination.
    The tier that actually ran is recorded as ``engine_used``.

    ``native`` asks for the compiled hot kernels
    (:mod:`repro.flow.native`) for the duration of this experiment:
    ``True``/``False`` override the ``REPRO_NATIVE`` environment
    variable, ``None`` defers to it.  Like ``engine``, it is a
    preference — when numba is missing the run proceeds on the
    pure-Python reference kernels with a one-time logged warning and an
    ``engine.fallback.native`` counter; when the compiled kernels
    actually run, ``engine_used`` gains a ``"+native"`` suffix.

    ``recorder`` is the observability sink (:mod:`repro.obs`) shared by
    every trial; when it is enabled, its counter snapshot after the run
    is attached to the result's ``metrics``.
    """
    from ..flow.native import (
        native_active,
        native_available,
        native_requested,
        set_native_override,
    )

    chosen = select_engine(spec, policy_factory, prefer=engine, recorder=recorder)
    set_native_override(native)
    try:
        if native_requested() and not native_available():
            global _NATIVE_WARNED
            if not _NATIVE_WARNED:
                _NATIVE_WARNED = True
                logging.getLogger(__name__).warning(
                    "native kernels requested but numba is not installed; "
                    "running the pure-Python reference kernels"
                )
            if recorder.enabled:
                recorder.count("engine.fallback.native")
        engine_used = chosen.name + ("+native" if native_active() else "")
        outcome = chosen.run(spec, policy_factory, data, recorder=recorder)
    finally:
        set_native_override(None)
    result_type = _RESULT_TYPES[spec.kind]
    return result_type(
        policy_name=outcome.policy_name,
        per_run=outcome.per_run,
        engine_used=engine_used,
        metrics=recorder.snapshot() if recorder.enabled else None,
    )


# ----------------------------------------------------------------------
# Thin shims (deprecation path: prefer run_experiment + ExperimentSpec)
# ----------------------------------------------------------------------
def run_join_experiment(
    policy_factory: Callable[[], ReplacementPolicy],
    paths: Sequence[tuple[list[Value], list[Value]]],
    cache_size: int,
    warmup: int = 0,
    window: int | None = None,
    r_model: StreamModel | None = None,
    s_model: StreamModel | None = None,
    window_oracle: WindowOracle | None = None,
    batch: bool = False,
    engine: Union[str, Engine, None] = None,
    recorder: Recorder = NULL_RECORDER,
) -> JoinExperimentResult:
    """Shim over :func:`run_experiment` for the joining problem.

    ``engine`` selects the execution tier by name (``"scalar"``,
    ``"batch"``, ``"parallel"``); the legacy ``batch=True`` flag is kept
    as an alias for ``engine="batch"`` for one release.  Either way the
    request is a preference: unsupported combinations negotiate down to
    the scalar loop and record ``engine_used`` accordingly.
    """
    spec = ExperimentSpec(
        kind="join",
        cache_size=cache_size,
        warmup=warmup,
        window=window,
        r_model=r_model,
        s_model=s_model,
        window_oracle=window_oracle,
    )
    if engine is None and batch:
        engine = "batch"
    result = run_experiment(
        spec, policy_factory, paths, engine=engine, recorder=recorder
    )
    assert isinstance(result, JoinExperimentResult)
    return result


def run_cache_experiment(
    policy_factory: Callable[[], ReplacementPolicy],
    references: Sequence[Sequence[Value]],
    cache_size: int,
    warmup: int = 0,
    reference_model: StreamModel | None = None,
    batch: bool = False,
    engine: Union[str, Engine, None] = None,
    recorder: Recorder = NULL_RECORDER,
) -> CacheExperimentResult:
    """Shim over :func:`run_experiment` for the caching problem."""
    spec = ExperimentSpec(
        kind="cache",
        cache_size=cache_size,
        warmup=warmup,
        r_model=reference_model,
    )
    if engine is None and batch:
        engine = "batch"
    result = run_experiment(
        spec, policy_factory, references, engine=engine, recorder=recorder
    )
    assert isinstance(result, CacheExperimentResult)
    return result


def run_multi_join_experiment(
    policy_factory: Callable[[], "object"],
    trials: Sequence,
    cache_size: int,
    queries: Sequence[tuple[str, str]],
    warmup: int = 0,
    models=None,
    engine: Union[str, Engine, None] = None,
    recorder: Recorder = NULL_RECORDER,
) -> MultiJoinExperimentResult:
    """Run a multi-join policy over per-trial ``{stream: values}`` maps."""
    spec = ExperimentSpec(
        kind="multi_join",
        cache_size=cache_size,
        warmup=warmup,
        queries=tuple(tuple(q) for q in queries),
        models=models,
    )
    result = run_experiment(
        spec, policy_factory, trials, engine=engine, recorder=recorder
    )
    assert isinstance(result, MultiJoinExperimentResult)
    return result
