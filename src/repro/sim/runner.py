"""Multi-run experiment execution with seeded stream generation.

The paper's synthetic experiments average 50 runs of 5000-tuple streams
(Section 6.2); this module provides the run loop: draw sample paths from
the configured models with per-run seeds, drive each policy over the same
paths, and aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..policies.base import ReplacementPolicy, WindowOracle
from ..streams.base import StreamModel, Value
from .join_sim import JoinRunResult, JoinSimulator

__all__ = [
    "JoinExperimentResult",
    "CacheExperimentResult",
    "run_join_experiment",
    "run_cache_experiment",
    "generate_paths",
    "generate_reference_paths",
]


@dataclass
class JoinExperimentResult:
    """Aggregated results of one policy across runs."""

    policy_name: str
    per_run: list[JoinRunResult]

    @property
    def mean_results(self) -> float:
        return float(
            np.mean([r.results_after_warmup for r in self.per_run])
        )

    @property
    def std_results(self) -> float:
        return float(np.std([r.results_after_warmup for r in self.per_run]))

    def mean_r_fraction(self) -> np.ndarray:
        """Per-step fraction of cache held by R tuples, averaged over runs."""
        return np.mean([r.r_fraction for r in self.per_run], axis=0)


def generate_paths(
    r_model: StreamModel,
    s_model: StreamModel,
    length: int,
    n_runs: int,
    seed: int,
) -> list[tuple[list[Value], list[Value]]]:
    """Draw ``n_runs`` independent stream-pair realizations."""
    paths = []
    for run in range(n_runs):
        rng = np.random.default_rng(seed + run)
        paths.append(
            (r_model.sample_path(length, rng), s_model.sample_path(length, rng))
        )
    return paths


def run_join_experiment(
    policy_factory: Callable[[], ReplacementPolicy],
    paths: Sequence[tuple[list[Value], list[Value]]],
    cache_size: int,
    warmup: int = 0,
    window: int | None = None,
    r_model: StreamModel | None = None,
    s_model: StreamModel | None = None,
    window_oracle: WindowOracle | None = None,
    batch: bool = False,
) -> JoinExperimentResult:
    """Run one (fresh) policy instance per path and aggregate.

    ``policy_factory`` builds a new policy per run so that per-run state
    (frequency counters, RNG streams) never leaks across runs.

    With ``batch=True`` all runs execute simultaneously on the
    vectorized engine (:mod:`repro.sim.batch`), which is seed-for-seed
    equivalent to the scalar loop for every policy it supports; policies
    without an exact batch adapter silently fall back to the scalar
    loop, so the flag is always safe to pass.
    """
    if batch:
        from ..policies.batch import UnbatchablePolicyError, make_batch_policy
        from .batch import BatchJoinSimulator, paths_to_arrays

        try:
            policy = policy_factory()
            adapter = make_batch_policy(
                policy,
                kind="join",
                r_model=r_model,
                s_model=s_model,
                window=window,
                window_oracle=window_oracle,
            )
        except UnbatchablePolicyError:
            pass
        else:
            r_arr, s_arr = paths_to_arrays(paths)
            sim = BatchJoinSimulator(
                cache_size, adapter, warmup=warmup, window=window
            )
            return JoinExperimentResult(
                policy_name=policy.name, per_run=sim.run(r_arr, s_arr).unbatch()
            )

    results = []
    name = None
    for r_values, s_values in paths:
        policy = policy_factory()
        name = policy.name
        sim = JoinSimulator(
            cache_size,
            policy,
            warmup=warmup,
            window=window,
            r_model=r_model,
            s_model=s_model,
            window_oracle=window_oracle,
        )
        results.append(sim.run(r_values, s_values))
    return JoinExperimentResult(policy_name=name or "policy", per_run=results)


@dataclass
class CacheExperimentResult:
    """Aggregated caching results of one policy across runs."""

    policy_name: str
    per_run: list

    @property
    def mean_hits(self) -> float:
        return float(np.mean([r.hits_after_warmup for r in self.per_run]))

    @property
    def mean_misses(self) -> float:
        return float(np.mean([r.misses_after_warmup for r in self.per_run]))

    @property
    def mean_hit_rate(self) -> float:
        return float(np.mean([r.hit_rate for r in self.per_run]))


def generate_reference_paths(
    model: StreamModel,
    length: int,
    n_runs: int,
    seed: int,
) -> list[list[Value]]:
    """Draw ``n_runs`` independent reference-stream realizations."""
    return [
        model.sample_path(length, np.random.default_rng(seed + run))
        for run in range(n_runs)
    ]


def run_cache_experiment(
    policy_factory: Callable[[], ReplacementPolicy],
    references: Sequence[Sequence[Value]],
    cache_size: int,
    warmup: int = 0,
    reference_model: StreamModel | None = None,
    batch: bool = False,
) -> CacheExperimentResult:
    """Caching counterpart of :func:`run_join_experiment`.

    ``batch=True`` uses the vectorized engine when the policy has an
    exact batch adapter, falling back to the scalar loop otherwise.
    """
    from .cache_sim import CacheSimulator

    if batch:
        from ..policies.batch import UnbatchablePolicyError, make_batch_policy
        from .batch import BatchCacheSimulator, values_to_array

        try:
            policy = policy_factory()
            adapter = make_batch_policy(
                policy, kind="cache", r_model=reference_model
            )
        except UnbatchablePolicyError:
            pass
        else:
            sim = BatchCacheSimulator(cache_size, adapter, warmup=warmup)
            result = sim.run(values_to_array(references))
            return CacheExperimentResult(
                policy_name=policy.name, per_run=result.unbatch()
            )

    results = []
    name = None
    for reference in references:
        policy = policy_factory()
        name = policy.name
        sim = CacheSimulator(
            cache_size,
            policy,
            warmup=warmup,
            reference_model=reference_model,
        )
        results.append(sim.run(reference))
    return CacheExperimentResult(policy_name=name or "policy", per_run=results)
