"""Multi-stream joins: multiple binary join queries over many streams.

Appendix C of the paper notes that the framework extends from one binary
join to "the general scenario in which multiple binary join queries
[run] over multiple probabilistic streams.  The only difference ... lies
in computation of expected benefit of the horizontal arc: ... this
expected benefit is a summary of each expected benefit of the binary
join with one partner stream."

Since the policy layer became partner-aware
(:class:`repro.policies.base.PolicyContext` addresses streams by name
when ``partner_names`` is set, with the binary join as the 1-partner
degenerate case), the unified policies serve both shapes and the
``Multi*`` classes in this module are **thin deprecated aliases** kept
for backward compatibility:

* :class:`MultiJoinSimulator` -- ``n`` named streams, a set of binary
  equijoin queries (stream-name pairs), one shared cache;
* :class:`MultiHeebPolicy` -- alias of
  :class:`~repro.policies.heeb_policy.HeebPolicy` over the partner-aware
  :class:`~repro.policies.heeb_policy.GenericJoinHeeb` (the appendix's
  per-partner benefit summation, the "summary" rule);
* :class:`MultiProbPolicy` / :class:`MultiRandPolicy` -- aliases of
  :class:`~repro.policies.prob.ProbPolicy` /
  :class:`~repro.policies.rand.RandPolicy`;
* :func:`solve_opt_offline_multi` -- the compact OPT-offline formulation
  with per-match-step benefit *counts* (a tuple may match arrivals from
  several partners in one step), replayable through the simulator via
  the ordinary :class:`~repro.policies.scheduled.ScheduledPolicy`.
"""

from __future__ import annotations

import warnings
from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import networkx as nx
import numpy as np

from ..core.lifetime import LifetimeEstimator
from ..core.tuples import CacheState, StreamTuple, TupleFactory
from ..flow.opt_offline import OfflineSolution
from ..obs.recorder import NULL_RECORDER, Recorder
from ..policies.base import PolicyContext, ReplacementPolicy
from ..policies.heeb_policy import GenericJoinHeeb, HeebPolicy
from ..policies.prob import ProbPolicy
from ..policies.rand import RandPolicy
from ..policies.scheduled import ScheduledPolicy
from ..streams.base import StreamModel, Value
from .engine import RunResult
from .step import build_multi_join_state, multi_join_step, multi_partner_names

__all__ = [
    "MultiPolicyContext",
    "MultiJoinPolicy",
    "MultiHeebPolicy",
    "MultiProbPolicy",
    "MultiRandPolicy",
    "MultiJoinRunResult",
    "MultiJoinSimulator",
    "solve_opt_offline_multi",
    "MultiScheduledPolicy",
    "brute_force_multi_benefit",
]


def _warn_deprecated_alias(name: str, replacement: str) -> None:
    """One DeprecationWarning per alias construction (removal on schedule)."""
    warnings.warn(
        f"{name} is a deprecated alias; use {replacement} instead "
        "(the partner-aware unified policy layer, PR 7)",
        DeprecationWarning,
        stacklevel=3,
    )


class MultiPolicyContext(PolicyContext):
    """Deprecated alias: a name-addressed :class:`PolicyContext`.

    Kept so pre-unification callers constructing
    ``MultiPolicyContext(time=..., cache_size=..., partner_names=...,
    histories=..., models=...)`` keep working; the unified context
    exposes the same ``latest_history(name)`` accessor.
    """

    def __init__(
        self,
        time: int,
        cache_size: int,
        partner_names: Mapping[str, tuple[str, ...]],
        histories: Optional[dict[str, list[Value]]] = None,
        models: Optional[Mapping[str, StreamModel]] = None,
        recorder: Recorder = NULL_RECORDER,
    ):
        _warn_deprecated_alias("MultiPolicyContext", "PolicyContext")
        super().__init__(
            kind="multi_join",
            time=time,
            cache_size=cache_size,
            partner_names=partner_names,
            histories=histories if histories is not None else {},
            models=models,
            recorder=recorder,
        )


class MultiJoinPolicy(ReplacementPolicy):
    """Deprecated alias: multi-join policies are ordinary
    :class:`~repro.policies.base.ReplacementPolicy` subclasses now (the
    partner-aware context carries the topology)."""

    name = "multi-policy"

    def __init__(self, *args, **kwargs):
        _warn_deprecated_alias("MultiJoinPolicy", "ReplacementPolicy")
        super().__init__(*args, **kwargs)


class MultiHeebPolicy(HeebPolicy):
    """Deprecated alias: HEEB with per-partner benefit summation.

    ``H_x = Σ_{P ∈ partners(stream(x))} Σ_Δt Pr{X^P_{t0+Δt} = v_x} L(Δt)``
    — exactly what the unified :class:`HeebPolicy` computes over a
    partner-aware context via the generic strategy.
    """

    def __init__(self, estimator: LifetimeEstimator, horizon: int | None = None):
        _warn_deprecated_alias("MultiHeebPolicy", "HeebPolicy(GenericJoinHeeb(...))")
        super().__init__(GenericJoinHeeb(estimator, horizon))
        self.estimator = estimator
        self.horizon = horizon

    def _h_value(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        """Pre-unification spelling of :meth:`score` (kept for callers)."""
        return self.strategy.h_value(tup, ctx)


class MultiProbPolicy(ProbPolicy):
    """Deprecated alias: the unified PROB already sums the value's
    observed frequency across all partner streams on name-addressed
    contexts."""

    def __init__(self, *args, **kwargs):
        _warn_deprecated_alias("MultiProbPolicy", "ProbPolicy")
        super().__init__(*args, **kwargs)


class MultiRandPolicy(RandPolicy):
    """Deprecated alias of :class:`~repro.policies.rand.RandPolicy`.

    Preserves the legacy draw order exactly: candidates are sorted by
    uid before sampling (a no-op for simulator-supplied candidate
    lists, which are always uid-ascending, but pinned for hand-built
    lists).
    """

    def __init__(self, *args, **kwargs):
        _warn_deprecated_alias("MultiRandPolicy", "RandPolicy")
        super().__init__(*args, **kwargs)

    def select_victims(self, candidates, n_evict, ctx):
        if n_evict <= 0:
            return []
        order = sorted(candidates, key=lambda t: t.uid)
        picks = self._rng.choice(len(order), size=n_evict, replace=False)
        return [order[i] for i in picks]


class MultiScheduledPolicy(ScheduledPolicy):
    """Deprecated alias: :class:`~repro.policies.scheduled.ScheduledPolicy`
    replays multi-join schedules unchanged (``(stream_name, arrival)``
    schedule keys)."""

    def __init__(self, *args, **kwargs):
        _warn_deprecated_alias("MultiScheduledPolicy", "ScheduledPolicy")
        super().__init__(*args, **kwargs)


# ----------------------------------------------------------------------
# Simulator
# ----------------------------------------------------------------------
@dataclass
class MultiJoinRunResult(RunResult):
    """Outcome of one multi-join run (result counts and occupancy)."""

    total_results: int
    results_after_warmup: int
    steps: int
    warmup: int
    cache_size: int
    #: results attributed to each query (unordered stream-name pair).
    per_query: dict[frozenset, int]
    #: per-step cache occupancy per stream.
    occupancy_by_stream: dict[str, np.ndarray]

    @property
    def primary_metric(self) -> float:
        """Join results produced after the warm-up window."""
        return float(self.results_after_warmup)


class MultiJoinSimulator:
    """Simulates several streams sharing one cache under binary queries.

    Parameters
    ----------
    cache_size:
        Shared capacity in tuples.
    policy:
        Any :class:`~repro.policies.base.ReplacementPolicy`; the
        partner-aware context carries the topology.
    queries:
        Binary equijoin queries as stream-name pairs.  A pair may appear
        once; self-joins are rejected.
    models:
        Optional per-stream models handed to model-aware policies.
    recorder:
        Observability sink (:mod:`repro.obs`); the default no-op sink
        keeps the loop uninstrumented.
    """

    def __init__(
        self,
        cache_size: int,
        policy: ReplacementPolicy,
        queries: Sequence[tuple[str, str]],
        warmup: int = 0,
        models: Mapping[str, StreamModel] | None = None,
        recorder: Recorder = NULL_RECORDER,
    ):
        """Validate the query set and bind the shared-cache parameters."""
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if warmup < 0:
            raise ValueError("warmup must be nonnegative")
        self._partner_names = multi_partner_names(queries)
        self._queries = [tuple(q) for q in queries]
        self._cache_size = cache_size
        self._policy = policy
        self._warmup = warmup
        self._models = models
        self._recorder = recorder

    def run(
        self, streams: Mapping[str, Sequence[Value]]
    ) -> MultiJoinRunResult:
        """Drive the policy over per-stream value sequences.

        The per-step semantics live in
        :func:`repro.sim.step.multi_join_step` (shared with the
        :mod:`repro.serve` event loop); this method is the finite
        driver adding warmup accounting and per-stream occupancy.
        """
        names = list(streams.keys())
        missing = set(self._partner_names) - set(names)
        if missing:
            raise ValueError(f"queries reference unknown streams {missing}")
        n = min(len(v) for v in streams.values())
        state = build_multi_join_state(
            self._cache_size,
            self._policy,
            self._queries,
            names,
            models=self._models,
            recorder=self._recorder,
        )

        after_warmup = 0
        occupancy = {name: np.zeros(n, dtype=np.int64) for name in names}

        for t in range(n):
            arrivals = {name: streams[name][t] for name in names}
            outcome = multi_join_step(state, t, arrivals)
            if t >= self._warmup:
                after_warmup += outcome.results
            for name in names:
                occupancy[name][t] = state.cache.count_side(name)

        result = MultiJoinRunResult(
            total_results=state.total_results,
            results_after_warmup=after_warmup,
            steps=n,
            warmup=self._warmup,
            cache_size=self._cache_size,
            per_query=state.per_query,
            occupancy_by_stream=occupancy,
        )
        if self._recorder.enabled:
            result.metrics = self._recorder.snapshot()
        return result


# ----------------------------------------------------------------------
# OPT-offline for the multi-join case
# ----------------------------------------------------------------------
def solve_opt_offline_multi(
    streams: Mapping[str, Sequence[Value]],
    queries: Sequence[tuple[str, str]],
    cache_size: int,
) -> OfflineSolution:
    """Optimal offline schedule for multiple binary queries.

    Same compact tuple-chain formulation as the two-stream solver, except
    that a tuple's match *events* carry counts: at one step, arrivals
    from several partner streams may all match, so the chain arc entering
    that event costs ``−count``.
    """
    if cache_size < 1:
        raise ValueError("cache_size must be >= 1")
    partner_names: dict[str, list[str]] = {}
    for a, b in queries:
        partner_names.setdefault(a, []).append(b)
        partner_names.setdefault(b, []).append(a)
    names = [n for n in streams if n in partner_names]
    n = min(len(streams[name]) for name in streams) if streams else 0

    eviction: dict[tuple[str, int], int] = {}
    cached: set[tuple[str, int]] = set()
    if n == 0:
        return OfflineSolution(eviction, 0, cache_size, 0, cached)

    # occurrence[name][v] = sorted arrival times of v in that stream.
    occurrence: dict[str, dict[Value, list[int]]] = {}
    for name in names:
        occ: dict[Value, list[int]] = {}
        for t in range(n):
            v = streams[name][t]
            if v is not None:
                occ.setdefault(v, []).append(t)
        occurrence[name] = occ

    graph = nx.DiGraph()
    for t in range(n):
        graph.add_edge(("T", t), ("T", t + 1), capacity=cache_size, weight=0)

    chains: list[tuple[str, int, list[tuple[int, int]]]] = []
    for name in names:
        for t in range(n):
            eviction[(name, t)] = t
            v = streams[name][t]
            if v is None:
                continue
            counts: Counter = Counter()
            for partner_name in partner_names[name]:
                for m in occurrence[partner_name].get(v, ()):  # type: ignore[arg-type]
                    if m > t:
                        counts[m] += 1
            if counts:
                events = sorted(counts.items())
                chains.append((name, t, events))

    for name, arrival, events in chains:
        prev = ("T", arrival)
        for i, (m, count) in enumerate(events):
            node = ("x", name, arrival, i)
            graph.add_edge(prev, node, capacity=1, weight=-count)
            graph.add_edge(node, ("T", m), capacity=1, weight=0)
            prev = node

    graph.nodes[("T", 0)]["demand"] = -cache_size
    graph.nodes[("T", n)]["demand"] = cache_size
    cost, flow_dict = nx.network_simplex(graph)

    for name, arrival, events in chains:
        if flow_dict[("T", arrival)].get(("x", name, arrival, 0), 0) <= 0:
            continue
        cached.add((name, arrival))
        evict_at = events[0][0]
        for i, (m, _count) in enumerate(events):
            node = ("x", name, arrival, i)
            if flow_dict[node].get(("T", m), 0) > 0:
                evict_at = m
                break
        eviction[(name, arrival)] = evict_at

    return OfflineSolution(
        eviction_time=eviction,
        total_benefit=-cost,
        cache_size=cache_size,
        length=n,
        cached=cached,
    )


def brute_force_multi_benefit(
    streams: Mapping[str, Sequence[Value]],
    queries: Sequence[tuple[str, str]],
    cache_size: int,
    max_states: int = 2_000_000,
) -> int:
    """Exhaustive optimum for tiny multi-join instances (validation)."""
    from functools import lru_cache
    from itertools import combinations

    partner_names: dict[str, list[str]] = {}
    for a, b in queries:
        partner_names.setdefault(a, []).append(b)
        partner_names.setdefault(b, []).append(a)
    names = [name for name in streams if name in partner_names]
    n = min(len(v) for v in streams.values())
    states_seen = 0

    @lru_cache(maxsize=None)
    def solve(t: int, cache: frozenset) -> int:
        nonlocal states_seen
        states_seen += 1
        if states_seen > max_states:
            raise RuntimeError("state budget exhausted")
        if t == n:
            return 0
        gained = 0
        for (name, _arrival, value) in cache:
            for partner_name in partner_names[name]:
                if streams[partner_name][t] == value:
                    gained += 1
        new = [
            (name, t, streams[name][t])
            for name in names
            if streams[name][t] is not None
        ]
        candidates = list(cache) + new
        n_keep = min(cache_size, len(candidates))
        best = 0
        seen = set()
        for keep in combinations(candidates, n_keep):
            key = frozenset(keep)
            if key in seen:
                continue
            seen.add(key)
            best = max(best, solve(t + 1, key))
        return gained + best

    return solve(0, frozenset())
