"""Vectorized batch Monte-Carlo engine: B independent trials at once.

The scalar simulators (:class:`~repro.sim.join_sim.JoinSimulator`,
:class:`~repro.sim.cache_sim.CacheSimulator`) drive one sample path at a
time through Python-object caches; the paper's experiments average 50
such runs per configuration, and sweeps repeat that per cache size and
per policy.  This module runs all trials of one policy simultaneously
over ``(B, slots)`` NumPy arrays, turning the per-step work into a
handful of array operations.

The batch engine is an *exact* reimplementation, not an approximation:
for the same input paths and the same per-trial policy seeds it makes
the same decisions as the scalar simulators, tuple for tuple.  The
scalar path therefore remains the reference oracle — the equivalence
suite (``tests/test_batch_equivalence.py``) pins every supported policy
to it — and the batch path is a drop-in accelerator selected with
``engine="batch"`` on the runner entry points (the legacy ``batch=True``
flag survives as a deprecated alias).

Layout invariants the engine maintains:

* alive tuples occupy a prefix of each row, in *candidate order* — the
  scalar cache's dict insertion order followed by this step's new R then
  new S arrival — so per-slot positions line up with the scalar
  candidate lists;
* compaction (window expiry, eviction) is a stable partition, applied in
  lockstep to policy auxiliary arrays, so relative order is preserved
  exactly as dict deletion preserves it;
* ``None`` stream values ("−" in the paper) are encoded as
  :data:`~repro.policies.batch.NONE_VALUE` and masked out of every
  comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..obs.recorder import NULL_RECORDER, Recorder
from ..policies.batch import (
    NONE_VALUE,
    R_CODE,
    S_CODE,
    BatchMultiPolicy,
    BatchPolicy,
)
from ..streams.base import StreamModel, Value
from .cache_sim import CacheRunResult
from .join_sim import JoinRunResult
from .step import multi_partner_names

__all__ = [
    "BatchState",
    "BatchJoinRunResult",
    "BatchCacheRunResult",
    "BatchMultiJoinRunResult",
    "BatchJoinSimulator",
    "BatchCacheSimulator",
    "BatchMultiJoinSimulator",
    "values_to_array",
    "paths_to_arrays",
    "streams_to_arrays",
    "generate_paths_arrays",
    "generate_reference_array",
]


@dataclass
class BatchState:
    """Slot arrays for ``B`` trials × ``slots`` cache positions.

    ``alive`` marks occupied slots; dead slots hold stale garbage and
    must be masked in every read.  ``last_r`` / ``last_s`` carry the most
    recent non-``None`` observation of each stream per trial (the
    ``x_{t0}`` anchors of Theorem 5), :data:`NONE_VALUE` before the
    first one.
    """

    val: np.ndarray
    side: np.ndarray
    arr: np.ndarray
    uid: np.ndarray
    alive: np.ndarray
    last_r: np.ndarray
    last_s: np.ndarray

    @classmethod
    def empty(cls, n_trials: int, n_slots: int) -> "BatchState":
        """All-empty state for ``n_trials`` caches of ``n_slots`` slots."""
        return cls(
            val=np.zeros((n_trials, n_slots), dtype=np.int64),
            side=np.full((n_trials, n_slots), -1, dtype=np.int8),
            arr=np.zeros((n_trials, n_slots), dtype=np.int64),
            uid=np.zeros((n_trials, n_slots), dtype=np.int64),
            alive=np.zeros((n_trials, n_slots), dtype=bool),
            last_r=np.full(n_trials, NONE_VALUE, dtype=np.int64),
            last_s=np.full(n_trials, NONE_VALUE, dtype=np.int64),
        )

    def compact(self, keep: np.ndarray, aux: tuple[np.ndarray, ...]) -> None:
        """Stable-partition kept slots to the row front, in place.

        ``keep`` must be a subset of ``alive``.  Policy auxiliary arrays
        are permuted identically so per-slot bookkeeping follows its
        tuple.
        """
        perm = np.argsort(~keep, axis=1, kind="stable")
        for a in (self.val, self.side, self.arr, self.uid, *aux):
            a[:] = np.take_along_axis(a, perm, axis=1)
        self.alive[:] = np.take_along_axis(keep, perm, axis=1)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class BatchJoinRunResult:
    """Per-trial outcomes of one batched joining run (arrays over B)."""

    total_results: np.ndarray
    results_after_warmup: np.ndarray
    steps: int
    warmup: int
    cache_size: int
    #: ``(B, steps)`` cached-R counts after each step's evictions.
    r_occupancy: np.ndarray
    #: ``(B, steps)`` total occupancy after each step's evictions.
    occupancy: np.ndarray

    def unbatch(self) -> list[JoinRunResult]:
        """Split into scalar-compatible per-trial results."""
        return [
            JoinRunResult(
                total_results=int(self.total_results[b]),
                results_after_warmup=int(self.results_after_warmup[b]),
                steps=self.steps,
                warmup=self.warmup,
                cache_size=self.cache_size,
                r_occupancy=self.r_occupancy[b].copy(),
                occupancy=self.occupancy[b].copy(),
            )
            for b in range(self.total_results.size)
        ]


@dataclass
class BatchCacheRunResult:
    """Per-trial outcomes of one batched caching run (arrays over B).

    ``steps`` holds per-trial *observed* reference counts (missing
    ``None`` entries excluded), matching the scalar simulator's
    ``steps == hits + misses`` invariant; ``skipped`` holds the per-trial
    missing-entry counts.
    """

    hits: np.ndarray
    misses: np.ndarray
    hits_after_warmup: np.ndarray
    misses_after_warmup: np.ndarray
    steps: np.ndarray
    warmup: int
    cache_size: int
    skipped: np.ndarray

    def unbatch(self) -> list[CacheRunResult]:
        """Split into scalar-compatible per-trial results."""
        return [
            CacheRunResult(
                hits=int(self.hits[b]),
                misses=int(self.misses[b]),
                hits_after_warmup=int(self.hits_after_warmup[b]),
                misses_after_warmup=int(self.misses_after_warmup[b]),
                steps=int(self.steps[b]),
                warmup=self.warmup,
                cache_size=self.cache_size,
                skipped=int(self.skipped[b]),
            )
            for b in range(self.hits.size)
        ]


@dataclass
class BatchMultiJoinRunResult:
    """Per-trial outcomes of one batched multi-join run (arrays over B)."""

    total_results: np.ndarray
    results_after_warmup: np.ndarray
    steps: int
    warmup: int
    cache_size: int
    #: The query pairs, in spec order (columns of :attr:`per_query`).
    queries: list[tuple[str, str]]
    #: ``(B, n_queries)`` results attributed to each query.
    per_query: np.ndarray
    #: stream name -> ``(B, steps)`` cached-tuple counts after each step.
    occupancy_by_stream: dict[str, np.ndarray]
    #: Slot arrays after the last step (final-cache parity checks).
    final_state: BatchState

    def unbatch(self) -> list:
        """Split into scalar-compatible per-trial results."""
        from .multi_join import MultiJoinRunResult

        return [
            MultiJoinRunResult(
                total_results=int(self.total_results[b]),
                results_after_warmup=int(self.results_after_warmup[b]),
                steps=self.steps,
                warmup=self.warmup,
                cache_size=self.cache_size,
                per_query={
                    frozenset(q): int(self.per_query[b, i])
                    for i, q in enumerate(self.queries)
                },
                occupancy_by_stream={
                    name: occ[b].copy()
                    for name, occ in self.occupancy_by_stream.items()
                },
            )
            for b in range(self.total_results.size)
        ]


# ----------------------------------------------------------------------
# Input conversion
# ----------------------------------------------------------------------
def values_to_array(paths: Sequence[Sequence[Value]]) -> np.ndarray:
    """Stack value sequences into a ``(B, n)`` int64 array.

    ``None`` ("−") becomes :data:`NONE_VALUE`; rows are truncated to the
    shortest sequence, matching the scalar simulator's
    ``min(len(r), len(s))`` convention.
    """
    if not paths:
        return np.zeros((0, 0), dtype=np.int64)
    n = min(len(p) for p in paths)
    out = np.empty((len(paths), n), dtype=np.int64)
    for b, path in enumerate(paths):
        out[b] = [NONE_VALUE if v is None else int(v) for v in path[:n]]
    return out


def paths_to_arrays(
    paths: Sequence[tuple[Sequence[Value], Sequence[Value]]],
) -> tuple[np.ndarray, np.ndarray]:
    """Split ``(r, s)`` path pairs into two ``(B, n)`` arrays."""
    r = values_to_array([p[0] for p in paths])
    s = values_to_array([p[1] for p in paths])
    n = min(r.shape[1], s.shape[1]) if paths else 0
    return r[:, :n], s[:, :n]


def streams_to_arrays(
    data: Sequence[Mapping[str, Sequence[Value]]],
) -> dict[str, np.ndarray]:
    """Stack per-trial stream mappings into ``{name: (B, n)}`` arrays.

    Every trial must list the same streams in the same order — the
    arrival (and hence uid-minting) order the scalar simulator derives
    from each mapping, which lock-step execution needs to be shared.
    Sequences are truncated to the shortest one across all trials and
    streams, matching :func:`values_to_array`'s convention.
    """
    if not data:
        return {}
    names = list(data[0])
    for item in data[1:]:
        if list(item) != names:
            raise ValueError(
                "all multi-join trials must list the same streams "
                "in the same order"
            )
    n = min(len(seq) for item in data for seq in item.values())
    out = {}
    for name in names:
        arr = np.empty((len(data), n), dtype=np.int64)
        for b, item in enumerate(data):
            arr[b] = [
                NONE_VALUE if v is None else int(v)
                for v in item[name][:n]
            ]
        out[name] = arr
    return out


def generate_paths_arrays(
    r_model: StreamModel,
    s_model: StreamModel,
    length: int,
    n_runs: int,
    seed: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Array form of :func:`repro.sim.runner.generate_paths`.

    Consumes the per-run generators identically (same ``seed + run``
    seeding, R drawn before S from the same generator), so trial ``b``
    sees exactly the path scalar run ``b`` sees.
    """
    from .runner import generate_paths

    return paths_to_arrays(generate_paths(r_model, s_model, length, n_runs, seed))


def generate_reference_array(
    model: StreamModel,
    length: int,
    n_runs: int,
    seed: int,
) -> np.ndarray:
    """Array form of :func:`repro.sim.runner.generate_reference_paths`."""
    from .runner import generate_reference_paths

    return values_to_array(generate_reference_paths(model, length, n_runs, seed))


# ----------------------------------------------------------------------
# Victim selection shared by both engines
# ----------------------------------------------------------------------
def _select_victims(
    policy: BatchPolicy,
    state: BatchState,
    n_evict: np.ndarray,
    t: int,
    cutoff_log: list[list[tuple[int, float]]] | None = None,
) -> np.ndarray:
    if not policy.scored:
        victims = policy.select(state, n_evict, t)
        return victims & state.alive
    scores = policy.scores(state, t)
    # Dead slots sort last (+inf beats every finite score); ties among
    # candidates break by uid ascending, exactly like ScoredPolicy's
    # sorted(key=(score, uid)).
    masked = np.where(state.alive, scores, np.inf)
    order = np.lexsort((state.uid, masked), axis=1)
    ranks = np.empty_like(order)
    np.put_along_axis(
        ranks, order, np.arange(order.shape[1], dtype=order.dtype)[None, :], axis=1
    )
    if cutoff_log is not None:
        # ScoredPolicy's "scores.cutoff": the best score still evicted —
        # the slot at rank n_evict-1 (alive whenever n_evict <= count).
        for b in np.flatnonzero(n_evict > 0).tolist():
            col = order[b, n_evict[b] - 1]
            cutoff_log[b].append((t, float(scores[b, col])))
    return (ranks < n_evict[:, None]) & state.alive


def _cutoff_log_for(
    policy: BatchPolicy, rec_on: bool, n_trials: int
) -> list[list[tuple[int, float]]] | None:
    """Per-trial ``scores.cutoff`` sinks, only where the scalar tier emits.

    Scalar ``scores.cutoff`` comes from
    :class:`~repro.policies.base.ScoredPolicy`; its batch mirror exists
    exactly for scored adapters whose score floats are bit-identical
    (``exact_scores``).  Non-scored adapters that emit their own series
    (Trie) route them through
    :meth:`~repro.policies.batch.BatchPolicy.series_logs` instead.
    """
    if rec_on and policy.scored and policy.exact_scores:
        return [[] for _ in range(n_trials)]
    return None


def _emit_policy_series(
    rec: Recorder,
    policy: BatchPolicy,
    cutoff_log: list[list[tuple[int, float]]] | None,
) -> None:
    """Drain policy-side series and counters after a recorded run.

    Series points are replayed trial-major with per-trial times
    ascending — the order a scalar recorder sees over the same trials —
    so order-dependent series aggregates match bit for bit.  Counters
    with zero totals are skipped, mirroring the scalar key sets.
    """
    series: dict[str, list[list[tuple[int, float]]]] = {}
    if cutoff_log is not None:
        series["scores.cutoff"] = cutoff_log
    series.update(policy.series_logs())
    for name, logs in series.items():
        for trial_points in logs:
            for t, value in trial_points:
                rec.series(name, t, value)
    for name, count in policy.counter_totals().items():
        if count:
            rec.count(name, count)


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------
class BatchJoinSimulator:
    """Vectorized counterpart of :class:`~repro.sim.join_sim.JoinSimulator`.

    Takes a :class:`~repro.policies.batch.BatchPolicy` (built by
    :func:`~repro.policies.batch.make_batch_policy`) and ``(B, n)`` value
    arrays; every step performs the scalar simulator's phases — window
    expiry, probing, arrival, eviction — as whole-array operations.

    An enabled ``recorder`` receives counters aggregated over the whole
    batch (``sim.steps``, ``arrivals.*``, ``join.results``,
    ``evict.<policy_name>``, ``evict.window_expired``) that equal the
    sum a scalar recorder would collect over the same trials.  Per-step
    trace events are not emitted — trace with the scalar engine for
    per-tuple visibility.
    """

    def __init__(
        self,
        cache_size: int,
        policy: BatchPolicy,
        warmup: int = 0,
        window: int | None = None,
        band: int = 0,
        recorder: Recorder = NULL_RECORDER,
        policy_name: str = "policy",
    ):
        """Validate and bind the join parameters shared by every trial."""
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if warmup < 0:
            raise ValueError("warmup must be nonnegative")
        if window is not None and window < 0:
            raise ValueError("window must be nonnegative")
        if band < 0:
            raise ValueError("band must be nonnegative")
        self._cache_size = cache_size
        self._policy = policy
        self._warmup = warmup
        self._window = window
        self._band = band
        self._recorder = recorder
        self._policy_name = policy_name

    def run(self, r_paths: np.ndarray, s_paths: np.ndarray) -> BatchJoinRunResult:
        """Simulate every trial in lock-step over ``(B, n)`` value paths."""
        r_paths = np.asarray(r_paths, dtype=np.int64)
        s_paths = np.asarray(s_paths, dtype=np.int64)
        if r_paths.shape != s_paths.shape or r_paths.ndim != 2:
            raise ValueError("r_paths and s_paths must be matching (B, n) arrays")
        n_trials, n = r_paths.shape
        k = self._cache_size
        # ≤ k survivors from the previous step plus one arrival per side.
        state = BatchState.empty(n_trials, k + 2)
        self._policy.reset(n_trials, k + 2)
        aux = self._policy.aux_arrays()

        counts = np.zeros(n_trials, dtype=np.int64)
        uid_next = np.zeros(n_trials, dtype=np.int64)
        total = np.zeros(n_trials, dtype=np.int64)
        after_warmup = np.zeros(n_trials, dtype=np.int64)
        r_occupancy = np.zeros((n_trials, n), dtype=np.int64)
        occupancy = np.zeros((n_trials, n), dtype=np.int64)

        rec = self._recorder
        rec_on = rec.enabled
        expired_total = 0
        evicted_total = 0
        # Per-step results, kept only to replay the scalar series exactly.
        results_log = np.zeros((n_trials, n), dtype=np.int64) if rec_on else None
        cutoff_log = _cutoff_log_for(self._policy, rec_on, n_trials)

        for t in range(n):
            r_vals = r_paths[:, t]
            s_vals = s_paths[:, t]
            has_r = r_vals != NONE_VALUE
            has_s = s_vals != NONE_VALUE
            state.last_r[has_r] = r_vals[has_r]
            state.last_s[has_s] = s_vals[has_s]
            self._policy.begin_step(state, t, r_vals, s_vals)

            # Sliding-window expiry: free removal of dead tuples.
            if self._window is not None:
                expired = state.alive & (state.arr < t - self._window)
                if expired.any():
                    if rec_on:
                        expired_total += int(expired.sum())
                    state.compact(state.alive & ~expired, aux)
                    counts = state.alive.sum(axis=1)

            # New arrivals join cached partner tuples (same-step arrivals
            # never join each other — they are appended only afterwards).
            r_safe = np.where(has_r, r_vals, 0)
            s_safe = np.where(has_s, s_vals, 0)
            if self._band == 0:
                near_r = state.val == r_safe[:, None]
                near_s = state.val == s_safe[:, None]
            else:
                near_r = np.abs(state.val - r_safe[:, None]) <= self._band
                near_s = np.abs(state.val - s_safe[:, None]) <= self._band
            m_r = state.alive & (state.side == S_CODE) & has_r[:, None] & near_r
            m_s = state.alive & (state.side == R_CODE) & has_s[:, None] & near_s
            step_results = m_r.sum(axis=1) + m_s.sum(axis=1)
            total += step_results
            if results_log is not None:
                results_log[:, t] = step_results
            if t >= self._warmup:
                after_warmup += step_results
            referenced = m_r | m_s
            if referenced.any():
                self._policy.on_reference(state, referenced, t)

            # Append arrivals in candidate order: new R, then new S.
            for side_code, has, vals in (
                (R_CODE, has_r, r_vals),
                (S_CODE, has_s, s_vals),
            ):
                rows = np.flatnonzero(has)
                if rows.size == 0:
                    continue
                cols = counts[rows]
                state.val[rows, cols] = vals[rows]
                state.side[rows, cols] = side_code
                state.arr[rows, cols] = t
                state.uid[rows, cols] = uid_next[rows]
                state.alive[rows, cols] = True
                uid_next[rows] += 1
                counts[rows] += 1
                self._policy.on_admit(state, rows, cols, side_code, vals[rows], t)

            n_evict = np.maximum(counts - k, 0)
            if n_evict.any():
                victims = _select_victims(
                    self._policy, state, n_evict, t, cutoff_log
                )
                if victims.any():
                    if rec_on:
                        evicted_total += int(victims.sum())
                    state.compact(state.alive & ~victims, aux)
                    counts = state.alive.sum(axis=1)

            r_occupancy[:, t] = (state.alive & (state.side == R_CODE)).sum(axis=1)
            occupancy[:, t] = counts

        if rec_on:
            self._record_counters(
                r_paths, s_paths, total, expired_total, evicted_total
            )
            self._emit_series(occupancy, results_log)
            _emit_policy_series(rec, self._policy, cutoff_log)
        return BatchJoinRunResult(
            total_results=total,
            results_after_warmup=after_warmup,
            steps=n,
            warmup=self._warmup,
            cache_size=k,
            r_occupancy=r_occupancy,
            occupancy=occupancy,
        )

    def _record_counters(
        self,
        r_paths: np.ndarray,
        s_paths: np.ndarray,
        total: np.ndarray,
        expired_total: int,
        evicted_total: int,
    ) -> None:
        """Flush batch-aggregated counters, mirroring the scalar keys.

        Counters with a zero total are skipped so the resulting
        dictionary has exactly the keys a scalar recorder would have
        created over the same trials.
        """
        rec = self._recorder
        n_steps = int(r_paths.size)
        arrivals_r = int((r_paths != NONE_VALUE).sum())
        arrivals_s = int((s_paths != NONE_VALUE).sum())
        arrivals_null = 2 * n_steps - arrivals_r - arrivals_s
        results = int(total.sum())
        for name, count in (
            ("sim.steps", n_steps),
            ("arrivals.R", arrivals_r),
            ("arrivals.S", arrivals_s),
            ("arrivals.null", arrivals_null),
            ("evict.window_expired", expired_total),
            (f"evict.{self._policy_name}", evicted_total),
            ("join.results", results),
        ):
            if count:
                rec.count(name, count)

    def _emit_series(
        self, occupancy: np.ndarray, results_log: np.ndarray | None
    ) -> None:
        """Replay the scalar per-step series from the batch arrays.

        Points are fed trial-major (all of trial 0's steps, then trial
        1's, …) — the exact order the scalar engine produces over the
        same trials — so the recorder's series aggregates, including the
        order-dependent downsampling buffers and quantile sketches, come
        out bit-identical to a scalar run.
        """
        assert results_log is not None
        rec = self._recorder
        occ_rows = occupancy.tolist()
        cum_rows = np.cumsum(results_log, axis=1).tolist()
        for occ_row, cum_row in zip(occ_rows, cum_rows):
            for t, (occ, cum) in enumerate(zip(occ_row, cum_row)):
                rec.series("cache.occupancy", t, occ)
                rec.series("join.results.cum", t, cum)


class BatchCacheSimulator:
    """Vectorized counterpart of :class:`~repro.sim.cache_sim.CacheSimulator`.

    All slots hold side-"S" database tuples; a reference is a hit when a
    slot carries its value (referential integrity guarantees at most one
    does), otherwise the tuple is fetched, given the next per-trial uid,
    and offered as an eviction candidate — exactly the scalar flow.

    An enabled ``recorder`` receives counters aggregated over the whole
    batch (``sim.steps``, ``arrivals.*``, ``cache.hits``,
    ``cache.misses``, ``evict.<policy_name>``) that equal the sum a
    scalar recorder would collect over the same trials.
    """

    def __init__(
        self,
        cache_size: int,
        policy: BatchPolicy,
        warmup: int = 0,
        recorder: Recorder = NULL_RECORDER,
        policy_name: str = "policy",
    ):
        """Validate and bind the caching parameters shared by every trial."""
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if warmup < 0:
            raise ValueError("warmup must be nonnegative")
        self._cache_size = cache_size
        self._policy = policy
        self._warmup = warmup
        self._recorder = recorder
        self._policy_name = policy_name

    def run(self, references: np.ndarray) -> BatchCacheRunResult:
        """Simulate every trial in lock-step over ``(B, n)`` references."""
        references = np.asarray(references, dtype=np.int64)
        if references.ndim != 2:
            raise ValueError("references must be a (B, n) array")
        n_trials, n = references.shape
        k = self._cache_size
        state = BatchState.empty(n_trials, k + 1)
        self._policy.reset(n_trials, k + 1)
        aux = self._policy.aux_arrays()

        counts = np.zeros(n_trials, dtype=np.int64)
        uid_next = np.zeros(n_trials, dtype=np.int64)
        hits = np.zeros(n_trials, dtype=np.int64)
        misses = np.zeros(n_trials, dtype=np.int64)
        hits_w = np.zeros(n_trials, dtype=np.int64)
        misses_w = np.zeros(n_trials, dtype=np.int64)

        rec = self._recorder
        rec_on = rec.enabled
        evicted_total = 0
        # Per-step hit/occupancy logs, kept only to replay scalar series.
        if rec_on:
            hit_log = np.zeros((n_trials, n), dtype=np.int64)
            occ_log = np.zeros((n_trials, n), dtype=np.int64)
        else:
            hit_log = occ_log = None
        cutoff_log = _cutoff_log_for(self._policy, rec_on, n_trials)

        for t in range(n):
            vals = references[:, t]
            has = vals != NONE_VALUE
            state.last_r[has] = vals[has]
            self._policy.begin_step(state, t, vals, None)
            if not has.any():
                if occ_log is not None:
                    occ_log[:, t] = counts
                continue

            safe = np.where(has, vals, 0)
            hit_mask = state.alive & has[:, None] & (state.val == safe[:, None])
            hit_rows = hit_mask.any(axis=1)
            hits += hit_rows
            miss_rows = has & ~hit_rows
            misses += miss_rows
            if hit_log is not None:
                hit_log[:, t] = hit_rows
            if t >= self._warmup:
                hits_w += hit_rows
                misses_w += miss_rows
            if hit_rows.any():
                self._policy.on_reference(state, hit_mask, t)

            rows = np.flatnonzero(miss_rows)
            if rows.size == 0:
                if occ_log is not None:
                    occ_log[:, t] = counts
                continue
            cols = counts[rows]
            state.val[rows, cols] = vals[rows]
            state.side[rows, cols] = S_CODE
            state.arr[rows, cols] = t
            state.uid[rows, cols] = uid_next[rows]
            state.alive[rows, cols] = True
            uid_next[rows] += 1
            counts[rows] += 1
            self._policy.on_admit(state, rows, cols, S_CODE, vals[rows], t)

            n_evict = np.maximum(counts - k, 0)
            if n_evict.any():
                victims = _select_victims(
                    self._policy, state, n_evict, t, cutoff_log
                )
                if victims.any():
                    if rec_on:
                        evicted_total += int(victims.sum())
                    state.compact(state.alive & ~victims, aux)
                    counts = state.alive.sum(axis=1)
            if occ_log is not None:
                occ_log[:, t] = counts

        observed = (references != NONE_VALUE).sum(axis=1)
        if rec_on:
            n_steps = int(references.size)
            n_observed = int(observed.sum())
            for name, count in (
                ("sim.steps", n_steps),
                ("arrivals.R", n_observed),
                ("arrivals.null", n_steps - n_observed),
                ("cache.hits", int(hits.sum())),
                ("cache.misses", int(misses.sum())),
                (f"evict.{self._policy_name}", evicted_total),
            ):
                if count:
                    rec.count(name, count)
            self._emit_series(references, occ_log, hit_log)
            _emit_policy_series(rec, self._policy, cutoff_log)
        return BatchCacheRunResult(
            hits=hits,
            misses=misses,
            hits_after_warmup=hits_w,
            misses_after_warmup=misses_w,
            steps=observed,
            warmup=self._warmup,
            cache_size=k,
            skipped=n - observed,
        )

    def _emit_series(
        self,
        references: np.ndarray,
        occ_log: np.ndarray | None,
        hit_log: np.ndarray | None,
    ) -> None:
        """Replay the scalar per-step series from the batch arrays.

        Trial-major like :meth:`BatchJoinSimulator._emit_series`; points
        exist only at observed (non-``None``) reference steps, matching
        the scalar simulator, and the cumulative hit rate is computed
        with the same integer division operands.
        """
        assert occ_log is not None and hit_log is not None
        rec = self._recorder
        observed_rows = (references != NONE_VALUE).tolist()
        occ_rows = occ_log.tolist()
        hit_cum = np.cumsum(hit_log, axis=1)
        miss_cum = np.cumsum(
            (references != NONE_VALUE) & (hit_log == 0), axis=1
        )
        hit_rows_cum = hit_cum.tolist()
        miss_rows_cum = miss_cum.tolist()
        for obs_row, occ_row, h_row, m_row in zip(
            observed_rows, occ_rows, hit_rows_cum, miss_rows_cum
        ):
            for t, seen in enumerate(obs_row):
                if not seen:
                    continue
                h = h_row[t]
                rec.series("cache.occupancy", t, occ_row[t])
                rec.series("cache.hits.cum", t, h)
                rec.series("cache.hit_rate", t, h / (h + m_row[t]))


class BatchMultiJoinSimulator:
    """Vectorized counterpart of :class:`~repro.sim.multi_join.MultiJoinSimulator`.

    Takes a :class:`~repro.policies.batch.BatchMultiPolicy` (built by
    :func:`~repro.policies.batch.make_batch_policy` with
    ``kind="multi_join"``) and per-stream ``(B, n)`` value arrays; every
    step performs the scalar step function's phases — per-partner
    probing, arrival minting in stream order, eviction — as whole-array
    operations, with ``side`` carrying the stream's index in arrival
    order instead of the binary R/S codes.

    An enabled ``recorder`` receives counters aggregated over the whole
    batch (``sim.steps``, ``arrivals.<stream>``, ``arrivals.null``,
    ``join.results``, ``evict.<policy_name>``) and the scalar per-step
    series (``cache.occupancy``, ``join.results.cum``,
    ``cache.hit_rate``) replayed trial-major, matching what a scalar
    recorder collects over the same trials.  Per-step trace events are
    not emitted — trace with the scalar engine for per-tuple visibility.
    """

    def __init__(
        self,
        cache_size: int,
        policy: BatchMultiPolicy,
        queries: Sequence[tuple[str, str]],
        warmup: int = 0,
        recorder: Recorder = NULL_RECORDER,
        policy_name: str = "policy",
    ):
        """Validate the query set and bind the shared-cache parameters."""
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if warmup < 0:
            raise ValueError("warmup must be nonnegative")
        self._partner_names = multi_partner_names(queries)
        self._queries = [tuple(q) for q in queries]
        self._cache_size = cache_size
        self._policy = policy
        self._warmup = warmup
        self._recorder = recorder
        self._policy_name = policy_name

    def run(self, streams: Mapping[str, np.ndarray]) -> BatchMultiJoinRunResult:
        """Simulate every trial in lock-step over per-stream value arrays."""
        names = list(streams)
        missing = set(self._partner_names) - set(names)
        if missing:
            raise ValueError(f"queries reference unknown streams {missing}")
        arrs = [np.asarray(streams[name], dtype=np.int64) for name in names]
        if any(a.ndim != 2 or a.shape != arrs[0].shape for a in arrs):
            raise ValueError("all streams must be matching (B, n) arrays")
        n_trials, n = arrs[0].shape
        k = self._cache_size
        code_of = {name: i for i, name in enumerate(names)}
        # Streams outside every query are observed but never cached.
        query_codes = [
            code_of[name] for name in names if name in self._partner_names
        ]
        # Probe edges in scalar order: arrival stream in names order, its
        # partners in query order; each edge knows its query column.
        query_col = {frozenset(q): i for i, q in enumerate(self._queries)}
        edges = [
            (code_of[name], code_of[p], query_col[frozenset((name, p))])
            for name in names
            if name in self._partner_names
            for p in self._partner_names[name]
        ]

        # ≤ k survivors plus one arrival per cacheable stream.
        state = BatchState.empty(n_trials, k + len(query_codes))
        self._policy.bind(names, self._partner_names)
        self._policy.reset(n_trials, k + len(query_codes))
        aux = self._policy.aux_arrays()

        counts = np.zeros(n_trials, dtype=np.int64)
        uid_next = np.zeros(n_trials, dtype=np.int64)
        total = np.zeros(n_trials, dtype=np.int64)
        after_warmup = np.zeros(n_trials, dtype=np.int64)
        per_query = np.zeros((n_trials, len(self._queries)), dtype=np.int64)
        probe_hits = np.zeros(n_trials, dtype=np.int64)
        probe_misses = np.zeros(n_trials, dtype=np.int64)
        occupancy_by_stream = {
            name: np.zeros((n_trials, n), dtype=np.int64) for name in names
        }

        rec = self._recorder
        rec_on = rec.enabled
        evicted_total = 0
        # Per-step logs, kept only to replay the scalar series exactly.
        if rec_on:
            occ_log = np.zeros((n_trials, n), dtype=np.int64)
            results_log = np.zeros((n_trials, n), dtype=np.int64)
            hits_log = np.zeros((n_trials, n), dtype=np.int64)
            probes_log = np.zeros((n_trials, n), dtype=np.int64)
        else:
            occ_log = results_log = hits_log = probes_log = None
        cutoff_log = _cutoff_log_for(self._policy, rec_on, n_trials)

        for t in range(n):
            vals = [a[:, t] for a in arrs]
            self._policy.begin_step(state, t, vals)

            # New arrivals join cached partner tuples (same-step arrivals
            # never join each other — they are appended only afterwards).
            step_results = np.zeros(n_trials, dtype=np.int64)
            referenced = np.zeros(state.alive.shape, dtype=bool)
            matched = {code: np.zeros(n_trials, dtype=bool) for code in query_codes}
            for a_code, p_code, q_col in edges:
                v = vals[a_code]
                has = v != NONE_VALUE
                if not has.any():
                    continue
                safe = np.where(has, v, 0)
                m = (
                    state.alive
                    & (state.side == p_code)
                    & has[:, None]
                    & (state.val == safe[:, None])
                )
                cnt = m.sum(axis=1)
                per_query[:, q_col] += cnt
                step_results += cnt
                referenced |= m
                matched[a_code] |= cnt > 0
            for code in query_codes:
                has = vals[code] != NONE_VALUE
                probe_hits += has & matched[code]
                probe_misses += has & ~matched[code]
            total += step_results
            if t >= self._warmup:
                after_warmup += step_results
            if results_log is not None:
                results_log[:, t] = step_results
                hits_log[:, t] = probe_hits
                probes_log[:, t] = probe_hits + probe_misses
            if referenced.any():
                self._policy.on_reference(state, referenced, t)

            # Append arrivals in candidate order: stream arrival order.
            for code in query_codes:
                v = vals[code]
                rows = np.flatnonzero(v != NONE_VALUE)
                if rows.size == 0:
                    continue
                cols = counts[rows]
                state.val[rows, cols] = v[rows]
                state.side[rows, cols] = code
                state.arr[rows, cols] = t
                state.uid[rows, cols] = uid_next[rows]
                state.alive[rows, cols] = True
                uid_next[rows] += 1
                counts[rows] += 1
                self._policy.on_admit(state, rows, cols, code, v[rows], t)

            n_evict = np.maximum(counts - k, 0)
            if n_evict.any():
                victims = _select_victims(
                    self._policy, state, n_evict, t, cutoff_log
                )
                if victims.any():
                    if rec_on:
                        evicted_total += int(victims.sum())
                    state.compact(state.alive & ~victims, aux)
                    counts = state.alive.sum(axis=1)

            for name in names:
                occupancy_by_stream[name][:, t] = (
                    state.alive & (state.side == code_of[name])
                ).sum(axis=1)
            if occ_log is not None:
                occ_log[:, t] = counts

        if rec_on:
            self._record_counters(names, arrs, total, evicted_total)
            self._emit_series(occ_log, results_log, hits_log, probes_log)
            _emit_policy_series(rec, self._policy, cutoff_log)
        return BatchMultiJoinRunResult(
            total_results=total,
            results_after_warmup=after_warmup,
            steps=n,
            warmup=self._warmup,
            cache_size=k,
            queries=self._queries,
            per_query=per_query,
            occupancy_by_stream=occupancy_by_stream,
            final_state=state,
        )

    def _record_counters(
        self,
        names: Sequence[str],
        arrs: Sequence[np.ndarray],
        total: np.ndarray,
        evicted_total: int,
    ) -> None:
        """Flush batch-aggregated counters, mirroring the scalar keys.

        Counters with a zero total are skipped so the resulting
        dictionary has exactly the keys a scalar recorder would have
        created over the same trials.
        """
        rec = self._recorder
        n_steps = int(arrs[0].size)
        pairs: list[tuple[str, int]] = [("sim.steps", n_steps)]
        observed = 0
        for name, arr in zip(names, arrs):
            seen = int((arr != NONE_VALUE).sum())
            observed += seen
            pairs.append((f"arrivals.{name}", seen))
        pairs.append(("arrivals.null", n_steps * len(names) - observed))
        pairs.append((f"evict.{self._policy_name}", evicted_total))
        pairs.append(("join.results", int(total.sum())))
        for name, count in pairs:
            if count:
                rec.count(name, count)

    def _emit_series(
        self,
        occ_log: np.ndarray | None,
        results_log: np.ndarray | None,
        hits_log: np.ndarray | None,
        probes_log: np.ndarray | None,
    ) -> None:
        """Replay the scalar per-step series from the batch arrays.

        Trial-major like :meth:`BatchJoinSimulator._emit_series`, so the
        recorder's order-dependent aggregates come out bit-identical to
        a scalar run; ``cache.hit_rate`` points exist only once a trial
        has probed at least once, with the same integer operands.
        """
        assert occ_log is not None
        rec = self._recorder
        occ_rows = occ_log.tolist()
        cum_rows = np.cumsum(results_log, axis=1).tolist()
        hit_rows = hits_log.tolist()
        probe_rows = probes_log.tolist()
        for occ_row, cum_row, hit_row, probe_row in zip(
            occ_rows, cum_rows, hit_rows, probe_rows
        ):
            for t, (occ, cum) in enumerate(zip(occ_row, cum_row)):
                rec.series("cache.occupancy", t, occ)
                rec.series("join.results.cum", t, cum)
                probes = probe_row[t]
                if probes:
                    rec.series("cache.hit_rate", t, hit_row[t] / probes)
