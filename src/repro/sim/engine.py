"""Layered simulation-engine architecture with capability negotiation.

The repository grew three hand-rolled step loops (two-stream joining,
classic caching, multi-way joining) plus a vectorized batch engine that
callers selected through scattered ``try/except`` blocks.  This module
dissolves that coupling into an explicit operator/engine split:

* :class:`ExperimentSpec` — a typed description of *what* to simulate
  (problem kind, cache size, warmup, window, band, stream models, window
  oracle, multi-join queries), independent of *how* it runs;
* :class:`RunResult` — the common base of every per-trial outcome
  (:class:`~repro.sim.join_sim.JoinRunResult`,
  :class:`~repro.sim.cache_sim.CacheRunResult`,
  :class:`~repro.sim.multi_join.MultiJoinRunResult`);
* :class:`Engine` — the execution-tier interface.  Three tiers ship:

  ============  =====================================================
  ``scalar``    the reference per-trial Python loop (supports all
                kinds and all policies, including FlowExpect's
                fast/reference paths)
  ``batch``     the vectorized NumPy engine (:mod:`repro.sim.batch`);
                joining, caching, and multi-join with an exact batch
                policy adapter
  ``parallel``  fans independent trials across a
                :class:`~concurrent.futures.ProcessPoolExecutor`;
                needs ``fork`` and an effective worker count > 1
  ============  =====================================================

* **capability negotiation** — every engine answers
  :meth:`Engine.supports` with ``None`` (supported) or a human-readable
  reason, and :func:`select_engine` resolves a preference to the best
  supported tier, logging a one-time warning whenever it has to fall
  back.  No caller ever catches
  :class:`~repro.policies.batch.UnbatchablePolicyError` again.

Both accelerated tiers are *exact*: for the same input paths and seeds
they reproduce the scalar loop's decisions tuple for tuple, which the
equivalence suites (``tests/test_batch_equivalence.py``,
``tests/test_parallel_engine.py``) pin.
"""

from __future__ import annotations

import abc
import logging
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Mapping, NamedTuple, Optional, Sequence, Union

import numpy as np

from ..obs.recorder import NULL_RECORDER, Recorder
from ..policies.base import WindowOracle
from ..streams.base import StreamModel

__all__ = [
    "RunResult",
    "ExperimentSpec",
    "EngineRun",
    "Engine",
    "ScalarEngine",
    "BatchEngine",
    "ParallelEngine",
    "register_engine",
    "available_engines",
    "get_engine",
    "select_engine",
    "spawn_seed",
    "spawn_rng",
]

logger = logging.getLogger(__name__)

#: Kinds an :class:`ExperimentSpec` may describe.
KINDS = ("join", "cache", "multi_join")


# ----------------------------------------------------------------------
# Per-trial seed spawning
# ----------------------------------------------------------------------
def spawn_seed(seed: int, index: int) -> int:
    """The derived seed of trial / producer ``index`` under base ``seed``.

    This is the single place the repo turns one experiment seed into
    independent per-trial (or per-producer) seeds.  Path generation
    (:func:`~repro.sim.runner.generate_paths`,
    :func:`~repro.sim.runner.generate_reference_paths`), the batch
    engine's array generators, and the :mod:`repro.serve` replay client
    all derive their RNGs here, so a spec seed means the same stream
    realizations everywhere.  The scheme — ``seed + index`` — is pinned
    by a regression test because every recorded benchmark and every
    decision-identical equivalence suite depends on it; changing it
    would silently invalidate all committed baselines.
    """
    if index < 0:
        raise ValueError("index must be nonnegative")
    return seed + index


def spawn_rng(seed: int, index: int) -> np.random.Generator:
    """A fresh :class:`numpy.random.Generator` for trial ``index``.

    Equivalent to ``np.random.default_rng(spawn_seed(seed, index))``;
    see :func:`spawn_seed` for why derivation is centralized.
    """
    return np.random.default_rng(spawn_seed(seed, index))


class RunResult:
    """Base class of every per-trial simulation outcome.

    Subclasses are dataclasses carrying the metric(s) of their problem;
    all expose the bookkeeping triple below plus :attr:`primary_metric`,
    the quantity the paper's figures aggregate (join results after
    warmup, cache hits after warmup).

    ``metrics`` carries the observability snapshot of the run — the
    counters/timers dict of the :mod:`repro.obs` recorder that
    instrumented it — and stays ``None`` on uninstrumented runs.  It is
    deliberately a plain class attribute, not a dataclass field, so
    existing positional constructions of every subclass keep working.
    """

    steps: int
    warmup: int
    cache_size: int
    #: Recorder snapshot (``repro.obs``) of the run, or ``None``.
    metrics: Optional[dict] = None

    @property
    def primary_metric(self) -> float:
        """The quantity the paper's figures aggregate for this run."""
        raise NotImplementedError


@dataclass
class ExperimentSpec:
    """Typed description of one simulation problem.

    The spec captures everything an engine needs besides the sampled
    input data and the policy: it is the negotiation currency of
    :func:`select_engine` and deliberately contains no execution detail
    (no trial counts, no worker counts, no engine names).

    Attributes
    ----------
    kind:
        ``"join"`` (two-stream equijoin), ``"cache"`` (reference stream
        against a database), or ``"multi_join"`` (several streams under
        binary join queries).
    cache_size / warmup / window / band:
        The simulator parameters of Sections 2, 6.2, and 7.  ``window``
        and ``band`` apply to the joining problems only.
    r_model / s_model:
        Stream models for model-aware policies.  For ``"cache"``,
        ``r_model`` is the reference-stream model and ``s_model`` unused.
    window_oracle:
        Value-window knowledge for the window-aware baselines.
    queries / models:
        Multi-join only: the binary query pairs and the per-stream model
        mapping handed to :class:`~repro.sim.multi_join.MultiJoinSimulator`.
    seed:
        Bookkeeping: the base seed the input paths were drawn with, when
        known.  Engines never consume it (paths are pre-sampled).
    """

    kind: str
    cache_size: int
    warmup: int = 0
    window: Optional[int] = None
    band: int = 0
    r_model: Optional[StreamModel] = None
    s_model: Optional[StreamModel] = None
    window_oracle: Optional[WindowOracle] = None
    queries: Optional[Sequence[tuple[str, str]]] = None
    models: Optional[Mapping[str, StreamModel]] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown kind {self.kind!r}; expected one of {KINDS}")
        if self.cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if self.warmup < 0:
            raise ValueError("warmup must be nonnegative")
        if self.window is not None and self.window < 0:
            raise ValueError("window must be nonnegative")
        if self.band < 0:
            raise ValueError("band must be nonnegative")
        if self.kind == "multi_join" and not self.queries:
            raise ValueError("multi_join specs need at least one query")


#: A zero-argument callable producing a fresh policy instance per trial.
PolicyFactory = Callable[[], object]


class EngineRun(NamedTuple):
    """What an engine hands back: the policy's name and per-trial results."""

    policy_name: str
    per_run: list


class Engine(abc.ABC):
    """One execution tier for Monte-Carlo simulation experiments.

    Engines are stateless between runs; configuration (worker counts)
    lives in constructor arguments.  ``supports`` is the capability side
    of the negotiation: it must be cheap, must not run a simulation, and
    returns ``None`` when the (spec, policy) combination is supported or
    a reason string when it is not.
    """

    #: Registry key and the value recorded as ``engine_used`` on results.
    name: str = "engine"

    @abc.abstractmethod
    def supports(
        self, spec: ExperimentSpec, policy_factory: PolicyFactory
    ) -> Optional[str]:
        """``None`` when this engine can run the spec, else the reason."""

    @abc.abstractmethod
    def run(
        self,
        spec: ExperimentSpec,
        policy_factory: PolicyFactory,
        data: Sequence,
        recorder: Recorder = NULL_RECORDER,
    ) -> EngineRun:
        """Execute one trial per ``data`` item and return ordered results.

        ``data`` items depend on ``spec.kind``: ``(r_values, s_values)``
        pairs for ``"join"``, reference sequences for ``"cache"``, and
        ``{stream_name: values}`` mappings for ``"multi_join"``.

        ``recorder`` is the observability sink (:mod:`repro.obs`)
        shared by every trial of the run; the default no-op recorder
        keeps instrumentation free.  Tiers that execute trials in other
        processes must fold worker-side counters back into it
        (:meth:`~repro.obs.recorder.Recorder.merge`).
        """


# ----------------------------------------------------------------------
# Scalar tier
# ----------------------------------------------------------------------
def _run_one_scalar(
    spec: ExperimentSpec,
    policy,
    item,
    recorder: Recorder = NULL_RECORDER,
) -> RunResult:
    """Run one trial through the reference simulator for ``spec.kind``."""
    if spec.kind == "join":
        from .join_sim import JoinSimulator

        r_values, s_values = item
        sim = JoinSimulator(
            spec.cache_size,
            policy,
            warmup=spec.warmup,
            window=spec.window,
            band=spec.band,
            r_model=spec.r_model,
            s_model=spec.s_model,
            window_oracle=spec.window_oracle,
            recorder=recorder,
        )
        return sim.run(r_values, s_values)
    if spec.kind == "cache":
        from .cache_sim import CacheSimulator

        sim = CacheSimulator(
            spec.cache_size,
            policy,
            warmup=spec.warmup,
            reference_model=spec.r_model,
            recorder=recorder,
        )
        return sim.run(item)
    from .multi_join import MultiJoinSimulator

    sim = MultiJoinSimulator(
        spec.cache_size,
        policy,
        spec.queries,
        warmup=spec.warmup,
        models=spec.models,
        recorder=recorder,
    )
    return sim.run(item)


class ScalarEngine(Engine):
    """The reference tier: one fresh policy instance per trial, the
    original Python step loops.  Supports every (spec, policy)
    combination; every other tier is pinned against it."""

    name = "scalar"

    def supports(self, spec, policy_factory):
        """Always ``None``: the scalar tier runs everything."""
        return None

    def run(self, spec, policy_factory, data, recorder=NULL_RECORDER):
        """One fresh policy + one reference simulator per trial."""
        results = []
        name = None
        rec_on = recorder.enabled
        for item in data:
            policy = policy_factory()
            name = getattr(policy, "name", None) or "policy"
            results.append(_run_one_scalar(spec, policy, item, recorder))
            if rec_on:
                recorder.count("trials.done")
        return EngineRun(policy_name=name or "policy", per_run=results)


# ----------------------------------------------------------------------
# Batch (vectorized) tier
# ----------------------------------------------------------------------
class BatchEngine(Engine):
    """The vectorized tier: all trials advance in lockstep over
    ``(B, slots)`` NumPy arrays (:mod:`repro.sim.batch`).

    Capability: joining, caching, and multi-join specs whose policy has
    an exact batch adapter
    (:func:`~repro.policies.batch.make_batch_policy`).
    """

    name = "batch"

    def _adapter(self, spec: ExperimentSpec, policy):
        from ..policies.batch import make_batch_policy

        if spec.kind == "cache":
            return make_batch_policy(policy, kind="cache", r_model=spec.r_model)
        if spec.kind == "multi_join":
            return make_batch_policy(
                policy,
                kind="multi_join",
                models=spec.models,
                queries=spec.queries,
            )
        return make_batch_policy(
            policy,
            kind="join",
            r_model=spec.r_model,
            s_model=spec.s_model,
            window=spec.window,
            window_oracle=spec.window_oracle,
            cache_size=spec.cache_size,
        )

    def supports(self, spec, policy_factory):
        """``None`` for specs whose policy has an exact batch adapter."""
        from ..policies.batch import UnbatchablePolicyError

        try:
            self._adapter(spec, policy_factory())
        except UnbatchablePolicyError as exc:
            return str(exc)
        return None

    def run(self, spec, policy_factory, data, recorder=NULL_RECORDER):
        """Run all trials in lockstep on the vectorized simulators.

        Counters are aggregated across trials (arrivals, results,
        evictions sum over the whole batch, matching what the scalar
        tier would record over the same trials); per-step trace events
        are not emitted — trace with the scalar engine for per-tuple
        visibility.
        """
        from .batch import (
            BatchCacheSimulator,
            BatchJoinSimulator,
            BatchMultiJoinSimulator,
            paths_to_arrays,
            streams_to_arrays,
            values_to_array,
        )

        policy = policy_factory()
        adapter = self._adapter(spec, policy)
        if spec.kind == "cache":
            sim = BatchCacheSimulator(
                spec.cache_size,
                adapter,
                warmup=spec.warmup,
                recorder=recorder,
                policy_name=policy.name,
            )
            batched = sim.run(values_to_array(data))
        elif spec.kind == "multi_join":
            arrays = streams_to_arrays(data)
            if not arrays:
                return EngineRun(policy_name=policy.name, per_run=[])
            sim = BatchMultiJoinSimulator(
                spec.cache_size,
                adapter,
                spec.queries,
                warmup=spec.warmup,
                recorder=recorder,
                policy_name=policy.name,
            )
            batched = sim.run(arrays)
        else:
            r_arr, s_arr = paths_to_arrays(data)
            sim = BatchJoinSimulator(
                spec.cache_size,
                adapter,
                warmup=spec.warmup,
                window=spec.window,
                band=spec.band,
                recorder=recorder,
                policy_name=policy.name,
            )
            batched = sim.run(r_arr, s_arr)
        per_run = batched.unbatch()
        if recorder.enabled:
            recorder.count("trials.done", len(per_run))
        return EngineRun(policy_name=policy.name, per_run=per_run)


# ----------------------------------------------------------------------
# Parallel tier
# ----------------------------------------------------------------------
#: Payload handed to forked workers.  Set immediately before the pool is
#: created (workers inherit it through fork) so policy factories —
#: routinely closures or lambdas — never need to be pickled.
_FORK_PAYLOAD: Optional[
    tuple[ExperimentSpec, PolicyFactory, tuple, Recorder]
] = None


def _parallel_worker(indices: list[int]) -> tuple[str, list, Optional[dict]]:
    """Run one contiguous chunk of trials inside a forked worker.

    Each worker instruments its trials with a fresh child of the
    parent's recorder (:meth:`~repro.obs.recorder.Recorder.fork`) and
    ships the child's snapshot back with the results, so counters cross
    the fork boundary even though the worker's memory does not.
    """
    assert _FORK_PAYLOAD is not None, "worker started without a fork payload"
    spec, policy_factory, data, recorder = _FORK_PAYLOAD
    child = recorder.fork() if recorder.enabled else NULL_RECORDER
    results = []
    name = "policy"
    child_on = child.enabled
    for i in indices:
        policy = policy_factory()
        name = getattr(policy, "name", None) or "policy"
        results.append(_run_one_scalar(spec, policy, data[i], child))
        if child_on:
            child.count("trials.done")
    snapshot = child.snapshot() if child.enabled else None
    return name, results, snapshot


class ParallelEngine(Engine):
    """Fans independent Monte-Carlo trials across worker processes.

    Each trial runs the *scalar* simulator with its own fresh policy
    instance, exactly as :class:`ScalarEngine` would, so results are
    seed-for-seed identical to the scalar tier for every policy and every
    worker count — parallelism only changes which process executes a
    trial, never the trial itself.  Trials are split into one contiguous
    chunk per worker and results are reassembled in trial order.

    Requires the ``fork`` start method (Linux; the default there): the
    spec, policy factory, and input data reach workers by process
    inheritance, so unpicklable closures work unchanged.  A worker
    exception propagates to the caller out of the first failing chunk.

    Capability: besides the start method, the tier declares itself
    unsupported when its effective worker count is 1 (explicitly, or
    because the machine has a single CPU) — one worker buys pure
    fork/IPC overhead over the scalar loop, so the negotiation falls
    back to scalar with the usual one-time warning instead of silently
    recording a sub-1x "parallel" run.
    """

    name = "parallel"

    def __init__(self, max_workers: Optional[int] = None):
        """Cap the worker pool; ``None`` means one worker per CPU."""
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._max_workers = max_workers

    @property
    def max_workers(self) -> int:
        """Effective worker count after the CPU-count default."""
        return self._max_workers or os.cpu_count() or 1

    def supports(self, spec, policy_factory):
        """Reject platforms/configurations where forking cannot win."""
        if "fork" not in multiprocessing.get_all_start_methods():
            return "the parallel engine requires the 'fork' start method"
        if self.max_workers <= 1:
            return (
                "the parallel engine has an effective worker count of 1 "
                "(single-CPU machine or max_workers=1), which only adds "
                "fork overhead"
            )
        return None

    def run(self, spec, policy_factory, data, recorder=NULL_RECORDER):
        """Fan trials over forked workers; reassemble in trial order.

        Worker-side counter snapshots are merged back into ``recorder``
        chunk by chunk, so after the run a
        :class:`~repro.obs.recorder.CounterRecorder`'s counters equal a
        scalar run's over the same trials (timers measure per-process
        wall clock and are merged additively; per-step trace events do
        not cross the fork boundary).
        """
        global _FORK_PAYLOAD
        data = list(data)
        if not data:
            name = getattr(policy_factory(), "name", None) or "policy"
            return EngineRun(policy_name=name, per_run=[])
        n_workers = min(self.max_workers, len(data))
        bounds = [
            (len(data) * w // n_workers, len(data) * (w + 1) // n_workers)
            for w in range(n_workers)
        ]
        chunks = [list(range(lo, hi)) for lo, hi in bounds if hi > lo]

        _FORK_PAYLOAD = (spec, policy_factory, tuple(data), recorder)
        try:
            ctx = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(
                max_workers=n_workers, mp_context=ctx
            ) as pool:
                futures = [pool.submit(_parallel_worker, chunk) for chunk in chunks]
                name = "policy"
                results: list = []
                for future in futures:
                    chunk_name, chunk_results, chunk_metrics = future.result()
                    name = chunk_name
                    results.extend(chunk_results)
                    if chunk_metrics is not None:
                        recorder.merge(chunk_metrics)
        finally:
            _FORK_PAYLOAD = None
        return EngineRun(policy_name=name, per_run=results)


# ----------------------------------------------------------------------
# Registry and negotiation
# ----------------------------------------------------------------------
_ENGINE_FACTORIES: dict[str, Callable[[], Engine]] = {}


def register_engine(name: str, factory: Callable[[], Engine]) -> None:
    """Register an execution tier under a string key."""
    _ENGINE_FACTORIES[name] = factory


def available_engines() -> tuple[str, ...]:
    """Registered engine names, scalar (the reference tier) first."""
    names = sorted(_ENGINE_FACTORIES)
    if "scalar" in names:
        names.remove("scalar")
        names.insert(0, "scalar")
    return tuple(names)


def get_engine(engine: Union[str, Engine]) -> Engine:
    """Resolve a registry key (or pass an instance through)."""
    if isinstance(engine, Engine):
        return engine
    try:
        return _ENGINE_FACTORIES[engine]()
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; available: {available_engines()}"
        ) from None


register_engine("scalar", ScalarEngine)
register_engine("batch", BatchEngine)
register_engine("parallel", ParallelEngine)


#: (preferred engine, reason) pairs already warned about, so a sweep that
#: hits the same unsupported combination hundreds of times logs once.
_FALLBACK_WARNED: set[tuple[str, str]] = set()


def select_engine(
    spec: ExperimentSpec,
    policy_factory: PolicyFactory,
    prefer: Union[str, Engine, None] = None,
    recorder: Recorder = NULL_RECORDER,
) -> Engine:
    """Resolve the engine to run ``spec`` with, negotiating capabilities.

    With no preference the reference ``scalar`` tier is chosen.  With a
    preference (a registry name or an :class:`Engine` instance), that
    engine is used when it supports the combination; otherwise the
    resolver falls back to ``scalar`` and emits a one-time
    :mod:`logging` warning naming the reason — the structural replacement
    for the old silent ``try/except UnbatchablePolicyError`` dispatch.

    An enabled ``recorder`` counts every resolution
    (``engine.dispatch.<tier>``) and every demotion
    (``engine.fallback.<preferred>``), so a sweep's metrics make silent
    negotiation visible.
    """
    if prefer is None:
        if recorder.enabled:
            recorder.count("engine.dispatch.scalar")
        return get_engine("scalar")
    preferred = get_engine(prefer)
    reason = preferred.supports(spec, policy_factory)
    if reason is None:
        if recorder.enabled:
            recorder.count(f"engine.dispatch.{preferred.name}")
        return preferred
    if recorder.enabled:
        recorder.count(f"engine.fallback.{preferred.name}")
        recorder.count("engine.dispatch.scalar")
    key = (preferred.name, reason)
    if key not in _FALLBACK_WARNED:
        _FALLBACK_WARNED.add(key)
        logger.warning(
            "engine %r cannot run this experiment (%s); falling back to "
            "the scalar engine",
            preferred.name,
            reason,
        )
    return get_engine("scalar")
