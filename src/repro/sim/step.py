"""Pure per-step transitions shared by the simulators and the server.

Historically each simulator (:mod:`repro.sim.join_sim`,
:mod:`repro.sim.cache_sim`, :mod:`repro.sim.multi_join`) carried its own
inlined copy of the per-step transition — arrival → probe → admit/evict
via the policy → emit results.  The streaming service tier
(:mod:`repro.serve`) needs the *same* semantics driven by an asyncio
event loop instead of a ``for`` loop, so this module hoists the
transition into reusable functions over explicit state objects:

* :class:`JoinStepState` / :func:`join_step` — the two-stream equijoin
  transition of Section 2 (sliding windows and band joins included);
* :class:`CacheStepState` / :func:`cache_step` — the classic caching
  transition (reference stream against a database);
* :class:`MultiJoinStepState` / :func:`multi_join_step` — the
  Appendix-C multi-stream generalization.

Each ``*_step`` function applies exactly one time step to the state and
returns a :class:`JoinStepOutcome` / :class:`CacheStepOutcome` /
:class:`MultiJoinStepOutcome` describing what happened (results
produced, victims evicted, tuples admitted).  The functions are "pure"
in the transition-system sense: all mutation is confined to the passed
state object, the same ``(state, inputs)`` always produces the same
``(state', outcome)``, and no global or ambient state is consulted —
which is what makes a finite driver loop (the simulators) and a
long-lived event loop (the server) provably the same semantics rather
than a fork.  The parity suite (``tests/test_serve_parity.py``) pins
this: a seeded stream replayed through the scalar simulator and through
a single-shard server produces byte-identical eviction decisions and
observability counters.

All :mod:`repro.obs` instrumentation lives *inside* the step functions
(guarded on :attr:`~repro.obs.recorder.Recorder.enabled` /
:attr:`~repro.obs.recorder.Recorder.trace` as everywhere else), so any
two drivers of the same transition also report identical counters,
series, and trace events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Optional, Sequence

from ..core.tuples import CacheState, StreamTuple, TupleFactory
from ..obs.recorder import NULL_RECORDER, Recorder
from ..policies.base import (
    PolicyContext,
    ReplacementPolicy,
    WindowOracle,
    validate_victims,
)
from ..streams.base import StreamModel, Value

__all__ = [
    "JoinStepState",
    "JoinStepOutcome",
    "make_join_state",
    "join_step",
    "CacheStepState",
    "CacheStepOutcome",
    "make_cache_state",
    "cache_step",
    "MultiJoinStepState",
    "MultiJoinStepOutcome",
    "multi_partner_names",
    "make_multi_join_state",
    "build_multi_join_state",
    "multi_join_step",
]


def _reset_policy(policy: ReplacementPolicy, ctx: PolicyContext) -> None:
    """Run-start reset for the policy plus its admission front-end.

    The admission filter is reset here rather than in ``reset``
    overrides because subclasses do not call ``super().reset()`` and
    policies are reused across trials.
    """
    policy.reset(ctx)
    admission = getattr(policy, "admission", None)
    if admission is not None:
        admission.reset()


def _victim_records(victims: Sequence[StreamTuple]) -> list[dict]:
    """JSON-ready ``{uid, side, value, arrived}`` records for a trace."""
    return [
        {"uid": v.uid, "side": v.side, "value": v.value, "arrived": v.arrival}
        for v in victims
    ]


# ----------------------------------------------------------------------
# Two-stream equijoin
# ----------------------------------------------------------------------
@dataclass
class JoinStepState:
    """Mutable state of one two-stream join run, step by step.

    Built by :func:`make_join_state`; advanced by :func:`join_step`.
    The fields mirror :class:`~repro.sim.join_sim.JoinSimulator`'s
    constructor parameters plus the live run state (cache, uid factory,
    policy context, cumulative result count).
    """

    cache_size: int
    policy: ReplacementPolicy
    ctx: PolicyContext
    cache: CacheState = field(default_factory=CacheState)
    factory: TupleFactory = field(default_factory=TupleFactory)
    window: Optional[int] = None
    band: int = 0
    #: Cumulative join results produced so far (all steps).
    total_results: int = 0

    @property
    def recorder(self) -> Recorder:
        """The observability sink the run was built with."""
        return self.ctx.recorder


@dataclass
class JoinStepOutcome:
    """What one :func:`join_step` application did."""

    #: Join results produced by this step's arrivals.
    results: int
    #: Tuples minted for this step's non-"−" arrivals.
    new_tuples: list[StreamTuple]
    #: Tuples the policy evicted (may include new arrivals never admitted).
    victims: list[StreamTuple]
    #: New tuples actually admitted to the cache.
    admitted: list[StreamTuple]
    #: Tuples removed by sliding-window expiry before the probe.
    expired: list[StreamTuple]
    #: Cache occupancy after the step.
    occupancy: int
    #: Cached R-side tuples after the step.
    r_occupancy: int


def make_join_state(
    cache_size: int,
    policy: ReplacementPolicy,
    *,
    window: Optional[int] = None,
    band: int = 0,
    r_model: Optional[StreamModel] = None,
    s_model: Optional[StreamModel] = None,
    window_oracle: Optional[WindowOracle] = None,
    recorder: Recorder = NULL_RECORDER,
) -> JoinStepState:
    """Validate parameters, build the policy context, reset the policy.

    This is the shared "run starts now" ritual of every join driver:
    the returned state is ready for its first :func:`join_step` call.
    """
    if cache_size < 1:
        raise ValueError("cache_size must be >= 1")
    if window is not None and window < 0:
        raise ValueError("window must be nonnegative")
    if band < 0:
        raise ValueError("band must be nonnegative")
    ctx = PolicyContext(
        kind="join",
        time=-1,
        cache_size=cache_size,
        r_model=r_model,
        s_model=s_model,
        window=window,
        window_oracle=window_oracle,
        recorder=recorder,
    )
    _reset_policy(policy, ctx)
    return JoinStepState(
        cache_size=cache_size,
        policy=policy,
        ctx=ctx,
        window=window,
        band=band,
    )


def join_step(
    state: JoinStepState, t: int, r_val: Value, s_val: Value
) -> JoinStepOutcome:
    """Apply one join time step: arrivals, expiry, probe, admit/evict.

    Semantics are exactly those of Section 2 as implemented by
    :class:`~repro.sim.join_sim.JoinSimulator` (whose loop is now a
    driver over this function): same-step R/S arrivals do not join each
    other, "−" (``None``) arrivals join nothing and are not cacheable,
    and expired tuples leave the cache before the policy is consulted.
    """
    cache = state.cache
    policy = state.policy
    ctx = state.ctx
    rec = ctx.recorder
    rec_on = rec.enabled
    rec_trace = rec.trace
    policy_name = policy.name

    ctx.time = t
    ctx.record_arrival("R", r_val)
    ctx.record_arrival("S", s_val)
    if rec_on:
        rec.count("sim.steps")
        for side, val in (("R", r_val), ("S", s_val)):
            rec.count("arrivals.null" if val is None else f"arrivals.{side}")
            if rec_trace:
                rec.event("arrival", t, side=side, value=val)

    # Sliding-window expiry: free removal of dead tuples.
    expired: list[StreamTuple] = []
    if state.window is not None:
        expired = cache.expired(t - state.window)
        if expired and rec_on:
            rec.count("evict.window_expired", len(expired))
            if rec_trace:
                rec.event(
                    "evict",
                    t,
                    policy=policy_name,
                    victims=_victim_records(expired),
                    expired=True,
                )
        for dead in expired:
            cache.remove(dead)
            policy.on_evict(dead, t)

    # New arrivals join cached partner tuples.
    step_results = 0
    for side, val in (("R", r_val), ("S", s_val)):
        partner_side = "S" if side == "R" else "R"
        for match in cache.matching_band(partner_side, val, state.band):
            step_results += 1
            policy.on_reference(match, t)
    state.total_results += step_results

    # Candidate set: cache plus joinable new arrivals.
    new_tuples = []
    if r_val is not None:
        new_tuples.append(state.factory.make("R", r_val, t))
    if s_val is not None:
        new_tuples.append(state.factory.make("S", s_val, t))
    candidates = cache.tuples() + new_tuples

    n_evict = max(0, len(candidates) - state.cache_size)
    victims = validate_victims(
        policy_name,
        candidates,
        policy.select_victims(candidates, n_evict, ctx),
        n_evict,
    )
    if victims and rec_on:
        rec.count(f"evict.{policy_name}", len(victims))
        if rec_trace:
            rec.event(
                "evict",
                t,
                policy=policy_name,
                victims=_victim_records(victims),
            )

    victim_uids = {v.uid for v in victims}
    for tup in victims:
        if tup in cache:
            cache.remove(tup)
        policy.on_evict(tup, t)
    admitted = []
    for tup in new_tuples:
        if tup.uid not in victim_uids:
            cache.add(tup)
            policy.on_admit(tup, t)
            admitted.append(tup)

    occupancy = len(cache)
    r_occupancy = cache.count_side("R")
    if rec_on:
        if step_results:
            rec.count("join.results", step_results)
        rec.series("cache.occupancy", t, occupancy)
        rec.series("join.results.cum", t, state.total_results)
        if rec_trace:
            rec.event("step", t, results=step_results)
            rec.event("occupancy", t, total=occupancy, r=r_occupancy)

    return JoinStepOutcome(
        results=step_results,
        new_tuples=new_tuples,
        victims=victims,
        admitted=admitted,
        expired=expired,
        occupancy=occupancy,
        r_occupancy=r_occupancy,
    )


# ----------------------------------------------------------------------
# Classic caching
# ----------------------------------------------------------------------
@dataclass
class CacheStepState:
    """Mutable state of one classic-caching run, step by step."""

    cache_size: int
    policy: ReplacementPolicy
    ctx: PolicyContext
    cache: CacheState = field(default_factory=CacheState)
    factory: TupleFactory = field(default_factory=TupleFactory)
    #: Cumulative hits / misses / skipped-"−" entries so far.
    hits: int = 0
    misses: int = 0
    skipped: int = 0

    @property
    def recorder(self) -> Recorder:
        """The observability sink the run was built with."""
        return self.ctx.recorder


@dataclass
class CacheStepOutcome:
    """What one :func:`cache_step` application did."""

    #: ``True`` hit, ``False`` miss, ``None`` skipped ("−" reference).
    hit: Optional[bool]
    #: Tuples the policy evicted on a miss (empty otherwise).
    victims: list[StreamTuple]
    #: The demand-fetched tuple, when it was admitted to the cache.
    admitted: Optional[StreamTuple]
    #: Cache occupancy after the step.
    occupancy: int


def make_cache_state(
    cache_size: int,
    policy: ReplacementPolicy,
    *,
    reference_model: Optional[StreamModel] = None,
    recorder: Recorder = NULL_RECORDER,
) -> CacheStepState:
    """Validate parameters, build the policy context, reset the policy."""
    if cache_size < 1:
        raise ValueError("cache_size must be >= 1")
    ctx = PolicyContext(
        kind="cache",
        time=-1,
        cache_size=cache_size,
        r_model=reference_model,
        recorder=recorder,
    )
    _reset_policy(policy, ctx)
    return CacheStepState(cache_size=cache_size, policy=policy, ctx=ctx)


def cache_step(
    state: CacheStepState, t: int, value: Hashable
) -> CacheStepOutcome:
    """Apply one caching step: reference lookup, demand fetch, evict.

    A hit touches the cached tuple (``on_reference``); a miss
    demand-fetches the referenced tuple and lets the policy choose
    victims among cache + fetched tuple; a "−" reference (``None``) is
    skipped without consulting the cache.
    """
    cache = state.cache
    policy = state.policy
    ctx = state.ctx
    rec = ctx.recorder
    rec_on = rec.enabled
    rec_trace = rec.trace
    policy_name = policy.name

    ctx.time = t
    ctx.record_arrival("R", value)
    if rec_on:
        rec.count("sim.steps")
    if value is None:
        state.skipped += 1
        if rec_on:
            rec.count("arrivals.null")
            if rec_trace:
                rec.event("arrival", t, side="R", value=None)
        return CacheStepOutcome(
            hit=None, victims=[], admitted=None, occupancy=len(cache)
        )

    cached = cache.matching("S", value)
    if rec_on:
        rec.count("arrivals.R")
        rec.count("cache.hits" if cached else "cache.misses")
        if rec_trace:
            rec.event("arrival", t, side="R", value=value, hit=bool(cached))
    if cached:
        state.hits += 1
        policy.on_reference(cached[0], t)
        if rec_on:
            rec.series("cache.occupancy", t, len(cache))
            rec.series("cache.hits.cum", t, state.hits)
            rec.series(
                "cache.hit_rate", t, state.hits / (state.hits + state.misses)
            )
        return CacheStepOutcome(
            hit=True, victims=[], admitted=None, occupancy=len(cache)
        )

    state.misses += 1
    fetched = state.factory.make("S", value, t)
    candidates = cache.tuples() + [fetched]
    n_evict = max(0, len(candidates) - state.cache_size)
    victims = validate_victims(
        policy_name,
        candidates,
        policy.select_victims(candidates, n_evict, ctx),
        n_evict,
    )
    if victims and rec_on:
        rec.count(f"evict.{policy_name}", len(victims))
        if rec_trace:
            rec.event(
                "evict",
                t,
                policy=policy_name,
                victims=_victim_records(victims),
            )
    victim_uids = {v.uid for v in victims}
    for tup in victims:
        if tup in cache:
            cache.remove(tup)
        policy.on_evict(tup, t)
    admitted: Optional[StreamTuple] = None
    if fetched.uid not in victim_uids:
        cache.add(fetched)
        policy.on_admit(fetched, t)
        admitted = fetched
    if rec_on:
        rec.series("cache.occupancy", t, len(cache))
        rec.series("cache.hits.cum", t, state.hits)
        rec.series(
            "cache.hit_rate", t, state.hits / (state.hits + state.misses)
        )
        if rec_trace:
            rec.event("occupancy", t, total=len(cache))
    return CacheStepOutcome(
        hit=False, victims=victims, admitted=admitted, occupancy=len(cache)
    )


# ----------------------------------------------------------------------
# Multi-stream joins (Appendix C)
# ----------------------------------------------------------------------
@dataclass
class MultiJoinStepState:
    """Mutable state of one multi-stream join run, step by step.

    ``ctx`` is a partner-aware :class:`~repro.policies.base.PolicyContext`
    (``kind="multi_join"``) addressing streams by name.
    """

    cache_size: int
    policy: ReplacementPolicy
    ctx: PolicyContext
    #: stream name -> names it has a join query with.
    partner_names: Mapping[str, tuple[str, ...]]
    #: Stream names that participate in this run, in arrival order.
    names: Sequence[str]
    cache: CacheState = field(default_factory=CacheState)
    factory: TupleFactory = field(default_factory=TupleFactory)
    #: results attributed to each query (unordered stream-name pair).
    per_query: dict = field(default_factory=dict)
    total_results: int = 0
    #: Cumulative probe outcomes: a non-"−" arrival of a query stream
    #: that matched ≥1 cached partner tuple counts as one hit, else one
    #: miss.  Feeds the ``cache.hit_rate`` series.
    probe_hits: int = 0
    probe_misses: int = 0

    @property
    def recorder(self) -> Recorder:
        """The observability sink the run was built with."""
        return self.ctx.recorder


@dataclass
class MultiJoinStepOutcome:
    """What one :func:`multi_join_step` application did."""

    results: int
    new_tuples: list[StreamTuple]
    victims: list[StreamTuple]
    admitted: list[StreamTuple]
    occupancy: int


def multi_partner_names(
    queries: Sequence[tuple[str, str]],
) -> dict[str, tuple[str, ...]]:
    """Validate a query set and derive the partner map.

    Queries are binary equijoins as stream-name pairs; a pair may appear
    once and self-joins are rejected.  Returns ``stream name -> names it
    has a join query with`` (partner order follows query order).  Shared
    by the simulator, the batch engine, and the server so every tier
    rejects malformed topologies with the same diagnostics.
    """
    if not queries:
        raise ValueError("need at least one join query")
    partner_names: dict[str, list[str]] = {}
    seen = set()
    for a, b in queries:
        if a == b:
            raise ValueError(f"self-join {a!r} not supported")
        key = frozenset((a, b))
        if key in seen:
            raise ValueError(f"duplicate query {a!r}-{b!r}")
        seen.add(key)
        partner_names.setdefault(a, []).append(b)
        partner_names.setdefault(b, []).append(a)
    return {name: tuple(ps) for name, ps in partner_names.items()}


def make_multi_join_state(
    cache_size: int,
    policy: ReplacementPolicy,
    ctx: PolicyContext,
    partner_names: Mapping[str, tuple[str, ...]],
    names: Sequence[str],
    queries: Sequence[tuple[str, str]],
) -> MultiJoinStepState:
    """Bind a prepared multi-join context into a step-ready state.

    This low-level constructor only assembles the state and seeds the
    per-query result counters; most callers want
    :func:`build_multi_join_state`, which also builds the context and
    resets the policy.
    """
    if cache_size < 1:
        raise ValueError("cache_size must be >= 1")
    return MultiJoinStepState(
        cache_size=cache_size,
        policy=policy,
        ctx=ctx,
        partner_names=partner_names,
        names=list(names),
        per_query={frozenset(q): 0 for q in queries},
    )


def build_multi_join_state(
    cache_size: int,
    policy: ReplacementPolicy,
    queries: Sequence[tuple[str, str]],
    names: Sequence[str],
    *,
    models: Optional[Mapping[str, StreamModel]] = None,
    recorder: Recorder = NULL_RECORDER,
) -> MultiJoinStepState:
    """Validate the topology, build the partner-aware context, reset the
    policy — the multi-join analogue of :func:`make_join_state`, shared
    by :class:`~repro.sim.multi_join.MultiJoinSimulator` and the
    :mod:`repro.serve` event loop."""
    partner_names = multi_partner_names(queries)
    ctx = PolicyContext(
        kind="multi_join",
        time=-1,
        cache_size=cache_size,
        partner_names=partner_names,
        histories={name: [] for name in names},
        models=models,
        recorder=recorder,
    )
    _reset_policy(policy, ctx)
    return make_multi_join_state(
        cache_size, policy, ctx, partner_names, names, queries
    )


def multi_join_step(
    state: MultiJoinStepState, t: int, arrivals: Mapping[str, Value]
) -> MultiJoinStepOutcome:
    """Apply one multi-stream step: arrivals, probes, admit/evict.

    Each non-"−" arrival probes the cached tuples of every partner
    stream; results are attributed to their (unordered) query pair.
    Streams that appear in no query are observed (their histories grow)
    but never cached.  Matched tuples receive
    :meth:`~repro.policies.base.ReplacementPolicy.on_reference`, and
    evictions/admissions fire the corresponding hooks, so bookkeeping
    policies (LRU, LFU) work on n-way topologies unchanged.
    """
    cache = state.cache
    policy = state.policy
    ctx = state.ctx
    rec: Recorder = ctx.recorder
    rec_on = rec.enabled
    rec_trace = rec.trace
    policy_name: str = policy.name
    names = state.names

    ctx.time = t
    for name in names:
        ctx.record_arrival(name, arrivals[name])
    if rec_on:
        rec.count("sim.steps")
        for name in names:
            val = arrivals[name]
            rec.count("arrivals.null" if val is None else f"arrivals.{name}")
            if rec_trace:
                rec.event("arrival", t, side=name, value=val)

    step_results = 0
    for name in names:
        val = arrivals[name]
        if val is None:
            continue
        arrival_results = 0
        for partner_name in state.partner_names.get(name, ()):
            matches = cache.matching(partner_name, val)
            arrival_results += len(matches)
            state.per_query[frozenset((name, partner_name))] += len(matches)
            for match in matches:
                policy.on_reference(match, t)
        if name in state.partner_names:
            if arrival_results:
                state.probe_hits += 1
            else:
                state.probe_misses += 1
        step_results += arrival_results
    state.total_results += step_results

    new_tuples = [
        state.factory.make(name, arrivals[name], t)
        for name in names
        if arrivals[name] is not None
        and name in state.partner_names  # streams in no query
    ]
    candidates = cache.tuples() + new_tuples
    n_evict = max(0, len(candidates) - state.cache_size)
    victims = validate_victims(
        policy_name,
        candidates,
        policy.select_victims(candidates, n_evict, ctx),
        n_evict,
    )
    if victims and rec_on:
        rec.count(f"evict.{policy_name}", len(victims))
        if rec_trace:
            rec.event(
                "evict",
                t,
                policy=policy_name,
                victims=_victim_records(victims),
            )
    victim_uids = {v.uid for v in victims}
    for tup in victims:
        if tup in cache:
            cache.remove(tup)
        policy.on_evict(tup, t)
    admitted = []
    for tup in new_tuples:
        if tup.uid not in victim_uids:
            cache.add(tup)
            policy.on_admit(tup, t)
            admitted.append(tup)

    occupancy = len(cache)
    if rec_on:
        if step_results:
            rec.count("join.results", step_results)
        rec.series("cache.occupancy", t, occupancy)
        rec.series("join.results.cum", t, state.total_results)
        probes = state.probe_hits + state.probe_misses
        if probes:
            rec.series("cache.hit_rate", t, state.probe_hits / probes)
        if rec_trace:
            rec.event("step", t, results=step_results)
            rec.event("occupancy", t, total=occupancy)

    return MultiJoinStepOutcome(
        results=step_results,
        new_tuples=new_tuples,
        victims=victims,
        admitted=admitted,
        occupancy=occupancy,
    )
