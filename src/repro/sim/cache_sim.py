"""Classic caching simulator: a reference stream against a database.

Implements the caching problem of Section 2: every reference-stream tuple
joins exactly one database tuple (referential integrity); a hit occurs
when that tuple is cached, otherwise the tuple is demand-fetched and may
be cached.  The policy maximizes hits (minimizes misses).

Database tuples are represented as side-"S" :class:`StreamTuple` objects
(matching the supply-stream role they play in the Section-2 reduction),
with the referenced value as their join value and the fetch time as their
arrival.  There is at most one cached tuple per value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..obs.recorder import NULL_RECORDER, Recorder
from ..policies.base import ReplacementPolicy
from ..streams.base import StreamModel
from .engine import RunResult
from .step import cache_step, make_cache_state

__all__ = ["CacheRunResult", "CacheSimulator"]


@dataclass
class CacheRunResult(RunResult):
    """Outcome of one simulated caching run.

    ``steps`` counts the references the run actually observed, so
    ``steps == hits + misses`` always holds; ``None`` ("−") entries in
    the input sequence — which the simulator skips without consulting
    the cache — are reported separately as ``skipped``.
    """

    hits: int
    misses: int
    hits_after_warmup: int
    misses_after_warmup: int
    steps: int
    warmup: int
    cache_size: int
    #: Input entries skipped as missing values (``None``).
    skipped: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups, 0.0 when nothing was observed."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def primary_metric(self) -> float:
        """Cache hits scored after the warm-up window."""
        return float(self.hits_after_warmup)


class CacheSimulator:
    """Drives one replacement policy over a reference value sequence."""

    def __init__(
        self,
        cache_size: int,
        policy: ReplacementPolicy,
        warmup: int = 0,
        reference_model: StreamModel | None = None,
        recorder: Recorder = NULL_RECORDER,
    ):
        """Validate and bind the caching-run parameters."""
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if warmup < 0:
            raise ValueError("warmup must be nonnegative")
        self._cache_size = cache_size
        self._policy = policy
        self._warmup = warmup
        self._reference_model = reference_model
        self._recorder = recorder

    def run(self, reference: Sequence[Hashable]) -> CacheRunResult:
        """Drive the policy over ``reference`` and tally hits/misses.

        The per-step semantics live in :func:`repro.sim.step.cache_step`
        (shared with the :mod:`repro.serve` event loop); this method is
        the finite driver adding warmup-aware hit/miss accounting.
        """
        state = make_cache_state(
            self._cache_size,
            self._policy,
            reference_model=self._reference_model,
            recorder=self._recorder,
        )

        hits_w = misses_w = 0
        for t, value in enumerate(reference):
            outcome = cache_step(state, t, value)
            if outcome.hit is None or t < self._warmup:
                continue
            if outcome.hit:
                hits_w += 1
            else:
                misses_w += 1

        result = CacheRunResult(
            hits=state.hits,
            misses=state.misses,
            hits_after_warmup=hits_w,
            misses_after_warmup=misses_w,
            steps=state.hits + state.misses,
            warmup=self._warmup,
            cache_size=self._cache_size,
            skipped=state.skipped,
        )
        if self._recorder.enabled:
            result.metrics = self._recorder.snapshot()
        return result
