"""Classic caching simulator: a reference stream against a database.

Implements the caching problem of Section 2: every reference-stream tuple
joins exactly one database tuple (referential integrity); a hit occurs
when that tuple is cached, otherwise the tuple is demand-fetched and may
be cached.  The policy maximizes hits (minimizes misses).

Database tuples are represented as side-"S" :class:`StreamTuple` objects
(matching the supply-stream role they play in the Section-2 reduction),
with the referenced value as their join value and the fetch time as their
arrival.  There is at most one cached tuple per value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..core.tuples import CacheState, TupleFactory
from ..obs.recorder import NULL_RECORDER, Recorder
from ..policies.base import PolicyContext, ReplacementPolicy, validate_victims
from ..streams.base import StreamModel
from .engine import RunResult
from .join_sim import _victim_records

__all__ = ["CacheRunResult", "CacheSimulator"]


@dataclass
class CacheRunResult(RunResult):
    """Outcome of one simulated caching run.

    ``steps`` counts the references the run actually observed, so
    ``steps == hits + misses`` always holds; ``None`` ("−") entries in
    the input sequence — which the simulator skips without consulting
    the cache — are reported separately as ``skipped``.
    """

    hits: int
    misses: int
    hits_after_warmup: int
    misses_after_warmup: int
    steps: int
    warmup: int
    cache_size: int
    #: Input entries skipped as missing values (``None``).
    skipped: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups, 0.0 when nothing was observed."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def primary_metric(self) -> float:
        """Cache hits scored after the warm-up window."""
        return float(self.hits_after_warmup)


class CacheSimulator:
    """Drives one replacement policy over a reference value sequence."""

    def __init__(
        self,
        cache_size: int,
        policy: ReplacementPolicy,
        warmup: int = 0,
        reference_model: StreamModel | None = None,
        recorder: Recorder = NULL_RECORDER,
    ):
        """Validate and bind the caching-run parameters."""
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if warmup < 0:
            raise ValueError("warmup must be nonnegative")
        self._cache_size = cache_size
        self._policy = policy
        self._warmup = warmup
        self._reference_model = reference_model
        self._recorder = recorder

    def run(self, reference: Sequence[Hashable]) -> CacheRunResult:
        """Drive the policy over ``reference`` and tally hits/misses."""
        cache = CacheState()
        factory = TupleFactory()
        rec = self._recorder
        rec_on = rec.enabled
        rec_trace = rec.trace
        policy_name = self._policy.name
        ctx = PolicyContext(
            kind="cache",
            time=-1,
            cache_size=self._cache_size,
            r_model=self._reference_model,
            recorder=rec,
        )
        self._policy.reset(ctx)

        hits = misses = 0
        hits_w = misses_w = 0
        skipped = 0

        for t, value in enumerate(reference):
            ctx.time = t
            ctx.record_arrival("R", value)
            if rec_on:
                rec.count("sim.steps")
            if value is None:
                skipped += 1
                if rec_on:
                    rec.count("arrivals.null")
                    if rec_trace:
                        rec.event("arrival", t, side="R", value=None)
                continue

            cached = cache.matching("S", value)
            if rec_on:
                rec.count("arrivals.R")
                rec.count("cache.hits" if cached else "cache.misses")
                if rec_trace:
                    rec.event(
                        "arrival", t, side="R", value=value, hit=bool(cached)
                    )
            if cached:
                hits += 1
                if t >= self._warmup:
                    hits_w += 1
                self._policy.on_reference(cached[0], t)
                if rec_on:
                    rec.series("cache.occupancy", t, len(cache))
                    rec.series("cache.hits.cum", t, hits)
                    rec.series("cache.hit_rate", t, hits / (hits + misses))
                continue

            misses += 1
            if t >= self._warmup:
                misses_w += 1
            fetched = factory.make("S", value, t)
            candidates = cache.tuples() + [fetched]
            n_evict = max(0, len(candidates) - self._cache_size)
            victims = validate_victims(
                self._policy.name,
                candidates,
                self._policy.select_victims(candidates, n_evict, ctx),
                n_evict,
            )
            if victims and rec_on:
                rec.count(f"evict.{policy_name}", len(victims))
                if rec_trace:
                    rec.event(
                        "evict",
                        t,
                        policy=policy_name,
                        victims=_victim_records(victims),
                    )
            victim_uids = {v.uid for v in victims}
            for tup in victims:
                if tup in cache:
                    cache.remove(tup)
                self._policy.on_evict(tup, t)
            if fetched.uid not in victim_uids:
                cache.add(fetched)
                self._policy.on_admit(fetched, t)
            if rec_on:
                rec.series("cache.occupancy", t, len(cache))
                rec.series("cache.hits.cum", t, hits)
                rec.series("cache.hit_rate", t, hits / (hits + misses))
                if rec_trace:
                    rec.event("occupancy", t, total=len(cache))

        result = CacheRunResult(
            hits=hits,
            misses=misses,
            hits_after_warmup=hits_w,
            misses_after_warmup=misses_w,
            steps=hits + misses,
            warmup=self._warmup,
            cache_size=self._cache_size,
            skipped=skipped,
        )
        if rec_on:
            result.metrics = rec.snapshot()
        return result
