"""Simulators: two-stream joining, classic caching, and run orchestration."""

from .batch import (
    BatchCacheRunResult,
    BatchCacheSimulator,
    BatchJoinRunResult,
    BatchJoinSimulator,
    BatchState,
    generate_paths_arrays,
    generate_reference_array,
    paths_to_arrays,
    values_to_array,
)
from .cache_sim import CacheRunResult, CacheSimulator
from .join_sim import JoinRunResult, JoinSimulator
from .multi_join import (
    MultiHeebPolicy,
    MultiJoinPolicy,
    MultiJoinRunResult,
    MultiJoinSimulator,
    MultiPolicyContext,
    MultiProbPolicy,
    MultiRandPolicy,
    MultiScheduledPolicy,
    brute_force_multi_benefit,
    solve_opt_offline_multi,
)
from .runner import (
    CacheExperimentResult,
    JoinExperimentResult,
    generate_paths,
    generate_reference_paths,
    run_cache_experiment,
    run_join_experiment,
)

__all__ = [
    "BatchCacheRunResult",
    "BatchCacheSimulator",
    "BatchJoinRunResult",
    "BatchJoinSimulator",
    "BatchState",
    "generate_paths_arrays",
    "generate_reference_array",
    "paths_to_arrays",
    "values_to_array",
    "CacheExperimentResult",
    "CacheRunResult",
    "CacheSimulator",
    "generate_reference_paths",
    "run_cache_experiment",
    "JoinExperimentResult",
    "JoinRunResult",
    "JoinSimulator",
    "MultiHeebPolicy",
    "MultiJoinPolicy",
    "MultiJoinRunResult",
    "MultiJoinSimulator",
    "MultiPolicyContext",
    "MultiProbPolicy",
    "MultiRandPolicy",
    "MultiScheduledPolicy",
    "brute_force_multi_benefit",
    "generate_paths",
    "run_join_experiment",
    "solve_opt_offline_multi",
]
