"""Simulators: two-stream joining, classic caching, and run orchestration.

Execution is layered (:mod:`repro.sim.engine`): experiment entry points
describe the problem with an :class:`ExperimentSpec` and a
capability-negotiated resolver picks the tier — ``scalar`` (reference
loop), ``batch`` (vectorized), or ``parallel`` (process fan-out).
"""

from .engine import (
    BatchEngine,
    Engine,
    EngineRun,
    ExperimentSpec,
    ParallelEngine,
    RunResult,
    ScalarEngine,
    available_engines,
    get_engine,
    register_engine,
    select_engine,
)
from .batch import (
    BatchCacheRunResult,
    BatchCacheSimulator,
    BatchJoinRunResult,
    BatchJoinSimulator,
    BatchState,
    generate_paths_arrays,
    generate_reference_array,
    paths_to_arrays,
    values_to_array,
)
from .cache_sim import CacheRunResult, CacheSimulator
from .join_sim import JoinRunResult, JoinSimulator
from .multi_join import (
    MultiHeebPolicy,
    MultiJoinPolicy,
    MultiJoinRunResult,
    MultiJoinSimulator,
    MultiPolicyContext,
    MultiProbPolicy,
    MultiRandPolicy,
    MultiScheduledPolicy,
    brute_force_multi_benefit,
    solve_opt_offline_multi,
)
from .runner import (
    CacheExperimentResult,
    ExperimentResult,
    JoinExperimentResult,
    MultiJoinExperimentResult,
    generate_paths,
    generate_reference_paths,
    run_cache_experiment,
    run_experiment,
    run_join_experiment,
    run_multi_join_experiment,
)

__all__ = [
    "BatchEngine",
    "Engine",
    "EngineRun",
    "ExperimentResult",
    "ExperimentSpec",
    "MultiJoinExperimentResult",
    "ParallelEngine",
    "RunResult",
    "ScalarEngine",
    "available_engines",
    "get_engine",
    "register_engine",
    "run_experiment",
    "run_multi_join_experiment",
    "select_engine",
    "BatchCacheRunResult",
    "BatchCacheSimulator",
    "BatchJoinRunResult",
    "BatchJoinSimulator",
    "BatchState",
    "generate_paths_arrays",
    "generate_reference_array",
    "paths_to_arrays",
    "values_to_array",
    "CacheExperimentResult",
    "CacheRunResult",
    "CacheSimulator",
    "generate_reference_paths",
    "run_cache_experiment",
    "JoinExperimentResult",
    "JoinRunResult",
    "JoinSimulator",
    "MultiHeebPolicy",
    "MultiJoinPolicy",
    "MultiJoinRunResult",
    "MultiJoinSimulator",
    "MultiPolicyContext",
    "MultiProbPolicy",
    "MultiRandPolicy",
    "MultiScheduledPolicy",
    "brute_force_multi_benefit",
    "generate_paths",
    "run_join_experiment",
    "solve_opt_offline_multi",
]
