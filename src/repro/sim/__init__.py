"""Simulators: two-stream joining, classic caching, and run orchestration."""

from .cache_sim import CacheRunResult, CacheSimulator
from .join_sim import JoinRunResult, JoinSimulator
from .multi_join import (
    MultiHeebPolicy,
    MultiJoinPolicy,
    MultiJoinRunResult,
    MultiJoinSimulator,
    MultiPolicyContext,
    MultiProbPolicy,
    MultiRandPolicy,
    MultiScheduledPolicy,
    brute_force_multi_benefit,
    solve_opt_offline_multi,
)
from .runner import (
    CacheExperimentResult,
    JoinExperimentResult,
    generate_paths,
    generate_reference_paths,
    run_cache_experiment,
    run_join_experiment,
)

__all__ = [
    "CacheExperimentResult",
    "CacheRunResult",
    "CacheSimulator",
    "generate_reference_paths",
    "run_cache_experiment",
    "JoinExperimentResult",
    "JoinRunResult",
    "JoinSimulator",
    "MultiHeebPolicy",
    "MultiJoinPolicy",
    "MultiJoinRunResult",
    "MultiJoinSimulator",
    "MultiPolicyContext",
    "MultiProbPolicy",
    "MultiRandPolicy",
    "MultiScheduledPolicy",
    "brute_force_multi_benefit",
    "generate_paths",
    "run_join_experiment",
    "solve_opt_offline_multi",
]
