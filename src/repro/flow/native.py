"""Optional native (numba-compiled) kernel for the FlowExpect solver.

The successive-shortest-paths solver in :mod:`repro.flow.fastpath` is
the bit-exact reference: pure Python over the
:class:`~repro.flow.fastpath.LookaheadTemplate` skeleton.  This module
restructures the *same algorithm* over flat ``int64`` arrays — CSR
adjacency, an array-backed binary heap — so numba can compile it, and
dispatches between the two behind the ``REPRO_NATIVE=1`` / ``native=``
knob:

* :func:`native_available` — numba is importable in this environment;
* :func:`native_requested` — the knob asked for native kernels (an
  explicit :func:`set_native_override` wins over the environment
  variable);
* :func:`native_active` — both of the above hold, i.e. the compiled
  kernel actually runs.

numba is an *optional* dependency: importing this module without it
degrades cleanly (``native_available()`` returns ``False`` and every
solve runs the pure-Python reference).  The compiled path is
decision-identical to the reference, not merely equally good: the
uid-rank perturbation of :mod:`repro.flow.solver` makes the optimal
flow pattern unique, so any exact integer solver — whatever its
traversal or heap tie order — produces the same per-arc usage mask.
``tests/test_native_kernels.py`` pins the array kernel against the
reference arc-for-arc; the kernel body is plain Python when numba is
absent, so the equivalence oracle holds on numba-free installations
too.

Overflow safety: the array kernel works in ``int64`` while the
reference uses Python's unbounded integers, so :func:`solve_unit_flow`
bounds the worst-case distance/potential magnitude before dispatching
and silently falls back to the reference when the bound does not fit.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fastpath imports us)
    from .fastpath import LookaheadTemplate

try:  # pragma: no cover - exercised only on numba-equipped installs
    import numba
except ImportError:  # pragma: no cover - the default, numba-free install
    numba = None

__all__ = [
    "native_available",
    "native_requested",
    "native_active",
    "set_native_override",
    "solve_unit_flow",
    "template_arrays",
]

_TRUTHY = ("1", "true", "yes", "on")

#: Session override installed by ``run_experiment(native=...)``; ``None``
#: defers to the ``REPRO_NATIVE`` environment variable.
_OVERRIDE: Optional[bool] = None


def native_available() -> bool:
    """Whether numba is importable, i.e. kernels can actually compile."""
    return numba is not None


def native_requested() -> bool:
    """Whether the knob (override or ``REPRO_NATIVE``) asked for native."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    return os.environ.get("REPRO_NATIVE", "").strip().lower() in _TRUTHY


def native_active() -> bool:
    """Whether compiled kernels run: requested *and* available."""
    return native_requested() and native_available()


def set_native_override(flag: Optional[bool]) -> None:
    """Install (or clear, with ``None``) the programmatic ``native=`` knob."""
    global _OVERRIDE
    _OVERRIDE = flag


def template_arrays(template: "LookaheadTemplate") -> tuple:
    """Flat int64 views of a template's skeleton, built once per template.

    Returns ``(tails, heads, topo, out_ptr, out_idx, adj_ptr, adj_idx)``
    where the two ``(ptr, idx)`` pairs are CSR encodings of the
    forward-arc and residual-arc adjacency lists.  Cached on the
    template so repeated decisions pay the conversion once.
    """
    arrs = template._arrays
    if arrs is not None:
        return arrs
    n_nodes = template.n_nodes
    tails = np.asarray(template.tails, dtype=np.int64)
    heads = np.asarray(template.heads, dtype=np.int64)
    topo = np.asarray(template.topo, dtype=np.int64)

    def _csr(lists: Sequence[Sequence[int]]) -> tuple[np.ndarray, np.ndarray]:
        ptr = np.zeros(n_nodes + 1, dtype=np.int64)
        ptr[1:] = np.cumsum([len(entries) for entries in lists])
        idx = np.fromiter(
            (a for entries in lists for a in entries),
            dtype=np.int64,
            count=int(ptr[-1]),
        )
        return ptr, idx

    out_ptr, out_idx = _csr(template.out_arcs)
    adj_ptr, adj_idx = _csr(template.adj)
    arrs = (tails, heads, topo, out_ptr, out_idx, adj_ptr, adj_idx)
    template._arrays = arrs
    return arrs


def _ssp_kernel(tails, heads, topo, out_ptr, out_idx, adj_ptr, adj_idx, cost, amount):
    """Successive shortest paths over flat arrays (njit-compilable).

    Mirrors ``fastpath._solve_unit_flow`` step for step: iteration 0
    relaxes in topological order (the DAG carries negative arcs), later
    iterations run Dijkstra with Johnson potentials over the residual
    network using an array-backed binary heap.  Returns a bool array of
    length ``n_arcs + 1``: per-forward-arc "carries flow" flags plus a
    trailing success flag (``False`` when the DAG cannot carry
    ``amount`` units — numba-safe error signalling).
    """
    n_nodes = out_ptr.shape[0] - 1
    n_arcs = tails.shape[0]
    INF = np.int64(2**62)
    cap = np.zeros(2 * n_arcs, dtype=np.int64)
    for a in range(n_arcs):
        cap[2 * a] = 1
    pot = np.zeros(n_nodes, dtype=np.int64)
    dist = np.empty(n_nodes, dtype=np.int64)
    par = np.empty(n_nodes, dtype=np.int64)
    done = np.empty(n_nodes, dtype=np.bool_)
    n_res = adj_idx.shape[0]
    heap_d = np.empty(n_res + 1, dtype=np.int64)
    heap_v = np.empty(n_res + 1, dtype=np.int64)
    out = np.zeros(n_arcs + 1, dtype=np.bool_)

    for iteration in range(amount):
        for v in range(n_nodes):
            dist[v] = INF
            par[v] = -1
        dist[0] = 0
        if iteration == 0:
            for ti in range(topo.shape[0]):
                u = topo[ti]
                du = dist[u]
                if du == INF:
                    continue
                for k in range(out_ptr[u], out_ptr[u + 1]):
                    a = out_idx[k]
                    v = heads[a]
                    nd = du + cost[a]
                    if nd < dist[v]:
                        dist[v] = nd
                        par[v] = 2 * a
        else:
            for v in range(n_nodes):
                done[v] = False
            heap_d[0] = 0
            heap_v[0] = 0
            size = 1
            while size > 0:
                d = heap_d[0]
                u = heap_v[0]
                size -= 1
                # Pop: move the tail entry to the root and sift it down.
                ld = heap_d[size]
                lv = heap_v[size]
                pos = 0
                while True:
                    child = 2 * pos + 1
                    if child >= size:
                        break
                    if child + 1 < size and heap_d[child + 1] < heap_d[child]:
                        child += 1
                    if heap_d[child] < ld:
                        heap_d[pos] = heap_d[child]
                        heap_v[pos] = heap_v[child]
                        pos = child
                    else:
                        break
                heap_d[pos] = ld
                heap_v[pos] = lv
                if done[u]:
                    continue
                done[u] = True
                if u == 1:  # sink reached; labels past it are not needed
                    break
                pot_u = pot[u]
                for k in range(adj_ptr[u], adj_ptr[u + 1]):
                    r = adj_idx[k]
                    if cap[r] == 0:
                        continue
                    a = r >> 1
                    if r & 1:
                        v = tails[a]
                        rc = -cost[a]
                    else:
                        v = heads[a]
                        rc = cost[a]
                    if done[v]:
                        continue
                    nd = d + rc + pot_u - pot[v]
                    if nd < dist[v]:
                        dist[v] = nd
                        par[v] = r
                        # Push (nd, v): sift up from the end.
                        pos = size
                        size += 1
                        while pos > 0:
                            parent = (pos - 1) >> 1
                            if heap_d[parent] > nd:
                                heap_d[pos] = heap_d[parent]
                                heap_v[pos] = heap_v[parent]
                                pos = parent
                            else:
                                break
                        heap_d[pos] = nd
                        heap_v[pos] = v
        d_sink = dist[1]
        if d_sink == INF:
            return out  # success flag stays False
        if iteration == 0:
            for v in range(n_nodes):
                pot[v] = dist[v] if dist[v] != INF else d_sink
        else:
            for v in range(n_nodes):
                pot[v] += dist[v] if dist[v] < d_sink else d_sink
        v = 1
        while v != 0:
            r = par[v]
            cap[r] -= 1
            cap[r ^ 1] += 1
            a = r >> 1
            v = heads[a] if (r & 1) else tails[a]

    for a in range(n_arcs):
        out[a] = cap[2 * a] == 0
    out[n_arcs] = True
    return out


_JIT: Optional[Callable] = None


def _jit_kernel() -> Optional[Callable]:
    """Compile the array kernel on first use (``None`` without numba)."""
    global _JIT
    if _JIT is None and numba is not None:
        _JIT = numba.njit(cache=True)(_ssp_kernel)
    return _JIT


def solve_unit_flow(
    template: "LookaheadTemplate", cost: Sequence[int], amount: int
) -> Sequence[bool]:
    """Solve one unit-flow instance, natively when the knob allows it.

    Decision-identical to ``fastpath._solve_unit_flow`` (the tie-break
    perturbation makes the optimal arc-usage mask unique); falls back to
    the pure-Python reference when numba is unavailable, native was not
    requested, or the int64 overflow bound fails.
    """
    if native_active():
        kernel = _jit_kernel()
        # Worst-case |distance| is one path of < n_nodes arcs; potentials
        # accumulate at most ``amount + 1`` sink distances on top.  Keep a
        # wide margin below 2**62 before trusting int64.
        max_c = 0
        for c in cost:
            a = -c if c < 0 else c
            if a > max_c:
                max_c = a
        if kernel is not None and (amount + 2) * template.n_nodes * (max_c + 1) < 2**61:
            arrs = template_arrays(template)
            cost_arr = np.asarray(cost, dtype=np.int64)
            res = kernel(*arrs, cost_arr, amount)
            if not res[-1]:
                raise RuntimeError(
                    f"lookahead DAG cannot carry {amount} flow units"
                )
            return res[:-1]
    from .fastpath import _solve_unit_flow

    return _solve_unit_flow(template, cost, amount)
