"""Min-cost-flow solving on top of networkx.

The paper uses Goldberg's scaling algorithm [9]; we substitute networkx's
network simplex, which computes the same optimum.  Network simplex
requires integer arc weights for exact arithmetic, while FlowExpect's arc
costs are negated probabilities, so costs are scaled by a fixed factor
and rounded; the returned objective is recomputed from the original float
weights.

Rounding float weights to integers independently per arc can create
*ties*: distinct flows whose true costs differ below the rounding
granularity (or genuinely equal-cost optima) leave the simplex free to
return either one, and which one it picks is an implementation detail
that has flipped across platforms.  ``tie_break_arcs`` makes the optimum
unique: the scaled integer costs are left-shifted by the number of listed
arcs and arc ``i`` of the list gains a ``2^i`` perturbation.  Every unit
of flow crosses at most one listed arc, so the perturbation total stays
below one un-shifted cost unit — the perturbed optimum is still an
optimum of the rounded problem — and because subset sums of distinct
powers of two are distinct, exactly one optimal flow pattern over the
listed arcs survives.  FlowExpect lists its source arcs in candidate-uid
order, which both makes its kept-set deterministic (prefer keeping
lower-uid candidates among ties) and lets the direct fast-path solver
(:mod:`repro.flow.fastpath`) reproduce the reference decision exactly.
"""

from __future__ import annotations

from typing import Optional, Sequence

import networkx as nx

__all__ = ["solve_min_cost_flow", "COST_SCALE"]

#: Float costs are multiplied by this and rounded to integers before
#: solving.  1e9 keeps probabilities' precision comfortably above the
#: rounding granularity while staying far from int64 overflow.
COST_SCALE = 10**9


def solve_min_cost_flow(
    graph: nx.DiGraph,
    source,
    sink,
    amount: int,
    cost_scale: int = COST_SCALE,
    tie_break_arcs: Optional[Sequence[tuple]] = None,
) -> tuple[dict, float]:
    """Push ``amount`` units from ``source`` to ``sink`` at minimum cost.

    Arcs carry ``capacity`` (int) and ``weight`` (float) attributes.
    Returns ``(flow_dict, cost)`` where ``flow_dict[u][v]`` is the integer
    flow on arc ``(u, v)`` and ``cost`` is the total cost under the
    original float weights.

    ``tie_break_arcs`` optionally lists ``(u, v)`` arcs, most preferred
    first, whose flow pattern breaks ties between equal-cost optima (see
    the module docstring); listed arcs must each lie on at most one unit
    of any source-sink flow.  The reported cost ignores the perturbation.
    """
    if amount < 0:
        raise ValueError("flow amount must be nonnegative")
    if amount == 0:
        return {u: {v: 0 for v in graph.successors(u)} for u in graph}, 0.0

    shift = len(tie_break_arcs) if tie_break_arcs else 0
    scaled = nx.DiGraph()
    scaled.add_nodes_from(graph.nodes)
    for u, v, data in graph.edges(data=True):
        scaled.add_edge(
            u,
            v,
            capacity=int(data.get("capacity", 1)),
            weight=int(round(float(data.get("weight", 0.0)) * cost_scale))
            << shift,
        )
    if tie_break_arcs:
        for i, (u, v) in enumerate(tie_break_arcs):
            scaled[u][v]["weight"] += 1 << i
    scaled.nodes[source]["demand"] = -amount
    scaled.nodes[sink]["demand"] = amount

    _, flow_dict = nx.network_simplex(scaled)

    cost = 0.0
    for u, flows in flow_dict.items():
        for v, f in flows.items():
            if f:
                cost += f * float(graph[u][v].get("weight", 0.0))
    return flow_dict, cost
