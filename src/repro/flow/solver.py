"""Min-cost-flow solving on top of networkx.

The paper uses Goldberg's scaling algorithm [9]; we substitute networkx's
network simplex, which computes the same optimum.  Network simplex
requires integer arc weights for exact arithmetic, while FlowExpect's arc
costs are negated probabilities, so costs are scaled by a fixed factor
and rounded; the returned objective is recomputed from the original float
weights.
"""

from __future__ import annotations

import networkx as nx

__all__ = ["solve_min_cost_flow", "COST_SCALE"]

#: Float costs are multiplied by this and rounded to integers before
#: solving.  1e9 keeps probabilities' precision comfortably above the
#: rounding granularity while staying far from int64 overflow.
COST_SCALE = 10**9


def solve_min_cost_flow(
    graph: nx.DiGraph,
    source,
    sink,
    amount: int,
    cost_scale: int = COST_SCALE,
) -> tuple[dict, float]:
    """Push ``amount`` units from ``source`` to ``sink`` at minimum cost.

    Arcs carry ``capacity`` (int) and ``weight`` (float) attributes.
    Returns ``(flow_dict, cost)`` where ``flow_dict[u][v]`` is the integer
    flow on arc ``(u, v)`` and ``cost`` is the total cost under the
    original float weights.
    """
    if amount < 0:
        raise ValueError("flow amount must be nonnegative")
    if amount == 0:
        return {u: {v: 0 for v in graph.successors(u)} for u in graph}, 0.0

    scaled = nx.DiGraph()
    scaled.add_nodes_from(graph.nodes)
    for u, v, data in graph.edges(data=True):
        scaled.add_edge(
            u,
            v,
            capacity=int(data.get("capacity", 1)),
            weight=int(round(float(data.get("weight", 0.0)) * cost_scale)),
        )
    scaled.nodes[source]["demand"] = -amount
    scaled.nodes[sink]["demand"] = amount

    _, flow_dict = nx.network_simplex(scaled)

    cost = 0.0
    for u, flows in flow_dict.items():
        for v, f in flows.items():
            if f:
                cost += f * float(graph[u][v].get("weight", 0.0))
    return flow_dict, cost
