"""FlowExpect fast path: template-reused graphs, direct min-cost flow.

The reference pipeline (:func:`~repro.flow.flowexpect.flowexpect_decide`)
rebuilds an O(l²)-node :class:`networkx.DiGraph` at every simulation
step, converts it wholesale to a scaled-integer copy, and hands it to
the generic ``network_simplex``.  Profiling shows all three stages are
avoidable:

* **Template reuse** — two FlowExpect steps with the same candidate
  count and look-ahead produce graphs that are *isomorphic*: only the
  time origin and the first-slice candidates differ.
  :class:`LookaheadTemplate` builds the arc skeleton (tails, heads,
  residual adjacency, topological order) once per ``(n_candidates,
  lookahead)`` pair; each decision merely rebinds arc costs.
* **Probability memoization** — arc costs come from a
  :class:`~repro.flow.prob_table.ProbTable`, so each distinct
  probability is computed once per decision (and once per *run* for
  independent models) instead of once per arc.
* **Direct solver** — the layered look-ahead DAG has unit capacities
  and integral (scaled) costs, so ``amount`` rounds of successive
  shortest paths — one plain array-based Dijkstra with Johnson
  potentials per unit — replace the generic simplex.

Decisions are *identical* to the reference path, not merely equally
good: both paths round float costs to integers with the same expression
and apply the same uid-rank tie-break perturbation (see
:func:`~repro.flow.solver.solve_min_cost_flow`), which makes the
optimal kept-set unique.  Any exact solver therefore returns the same
kept/victim split, which the equivalence suite pins seed for seed.
"""

from __future__ import annotations

import time
from heapq import heappop, heappush
from typing import Optional, Sequence

from ..core.tuples import StreamTuple, partner
from ..obs.recorder import NULL_RECORDER, Recorder
from ..streams.base import History, StreamModel
from .flowexpect import FlowExpectDecision
from .native import solve_unit_flow
from .prob_table import ProbTable
from .solver import COST_SCALE

__all__ = [
    "LookaheadTemplate",
    "FlowExpectFastPath",
    "flowexpect_decide_fast",
]

#: Node ids of the virtual terminals in every template.
_SRC = 0
_SINK = 1


class LookaheadTemplate:
    """Arc skeleton of the Section-3.1 graph for ``(n, lookahead)``.

    Entities are numbered ``0 .. n−1`` for the determined first-slice
    candidates (in candidate order) and ``n + 2(s−1) + j`` for the
    undetermined arrival of side ``"RS"[j]`` born at slice ``s ≥ 1``.
    Node ids are assigned in topological order: source, then slice by
    slice (copies before newborns, since replacement arcs run copy →
    newborn within a slice), then sink.

    Arc ``a`` runs ``tails[a] → heads[a]`` with unit capacity; residual
    arc ids are ``2a`` (forward) and ``2a+1`` (backward).  ``costed``
    maps each benefit-carrying arc (horizontal and sink arcs) to the
    ``(entity, Δt)`` pair whose negated expected benefit at ``t0 + Δt``
    is its cost; all other arcs cost zero.
    """

    __slots__ = (
        "n_candidates",
        "lookahead",
        "n_nodes",
        "born",
        "tails",
        "heads",
        "out_arcs",
        "adj",
        "topo",
        "src_arcs",
        "costed",
        "_arrays",
    )

    def __init__(self, n_candidates: int, lookahead: int):
        """Precompute the graph skeleton for this problem shape."""
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        if n_candidates < 1:
            raise ValueError("need at least one candidate")
        n, look = n_candidates, lookahead
        self.n_candidates = n
        self.lookahead = look
        #: Slice at which each entity first exists.
        self.born = [0] * n + [s for s in range(1, look) for _ in "RS"]
        born = self.born
        n_entities = len(born)

        node: dict[tuple[int, int], int] = {}
        topo = [_SRC]
        nid = 2
        for s in range(look):
            for newborn in (False, True):
                for e in range(n_entities):
                    if born[e] <= s and (born[e] == s) == newborn:
                        node[(e, s)] = nid
                        topo.append(nid)
                        nid += 1
        topo.append(_SINK)
        self.n_nodes = nid
        self.topo = topo

        tails: list[int] = []
        heads: list[int] = []
        costed: list[tuple[int, int, int]] = []

        def add_arc(u: int, v: int) -> int:
            tails.append(u)
            heads.append(v)
            return len(tails) - 1

        self.src_arcs = [add_arc(_SRC, node[(i, 0)]) for i in range(n)]
        for s in range(1, look):
            for e in range(n_entities):
                if born[e] < s:
                    costed.append((add_arc(node[(e, s - 1)], node[(e, s)]), e, s))
            for u in range(n_entities):
                if born[u] == s:
                    for e in range(n_entities):
                        if born[e] < s:
                            add_arc(node[(e, s)], node[(u, s)])
        for e in range(n_entities):
            costed.append((add_arc(node[(e, look - 1)], _SINK), e, look))

        self.tails = tails
        self.heads = heads
        self.costed = costed
        self.out_arcs: list[list[int]] = [[] for _ in range(nid)]
        self.adj: list[list[int]] = [[] for _ in range(nid)]
        for a, (u, v) in enumerate(zip(tails, heads)):
            self.out_arcs[u].append(a)
            self.adj[u].append(2 * a)
            self.adj[v].append(2 * a + 1)
        #: Flat int64 skeleton views, built lazily by
        #: :func:`repro.flow.native.template_arrays` for the compiled solver.
        self._arrays = None


def _solve_unit_flow(
    template: LookaheadTemplate, cost: list[int], amount: int
) -> list[bool]:
    """Min-cost flow of ``amount`` units on the template's unit-cap DAG.

    Successive shortest paths: the first path is found by relaxation in
    topological order (the graph is a DAG with negative arcs), later
    paths by Dijkstra over the residual network with Johnson potentials
    keeping reduced costs nonnegative.  Exact on integer costs.

    Returns a per-forward-arc "carries flow" mask.
    """
    tails, heads, adj = template.tails, template.heads, template.adj
    n_nodes = template.n_nodes
    cap = [1, 0] * len(tails)
    pot = [0] * n_nodes
    inf = float("inf")

    for iteration in range(amount):
        dist: list = [inf] * n_nodes
        par = [-1] * n_nodes
        dist[_SRC] = 0
        if iteration == 0:
            for u in template.topo:
                du = dist[u]
                if du is inf:
                    continue
                for a in template.out_arcs[u]:
                    v = heads[a]
                    nd = du + cost[a]
                    if nd < dist[v]:
                        dist[v] = nd
                        par[v] = 2 * a
        else:
            done = [False] * n_nodes
            heap: list[tuple] = [(0, _SRC)]
            while heap:
                d, u = heappop(heap)
                if done[u]:
                    continue
                done[u] = True
                if u == _SINK:
                    break
                pot_u = pot[u]
                for r in adj[u]:
                    if not cap[r]:
                        continue
                    a = r >> 1
                    if r & 1:
                        v, rc = tails[a], -cost[a]
                    else:
                        v, rc = heads[a], cost[a]
                    if done[v]:
                        continue
                    nd = d + rc + pot_u - pot[v]
                    if nd < dist[v]:
                        dist[v] = nd
                        par[v] = r
                        heappush(heap, (nd, v))
        d_sink = dist[_SINK]
        if d_sink is inf:
            raise RuntimeError(
                f"lookahead DAG cannot carry {amount} flow units"
            )
        if iteration == 0:
            # Distances are exact for every node (the DAG pass has no
            # early exit) and arc costs are negative, so the potentials
            # must be the distances themselves — capping at the sink
            # distance is only sound once reduced costs are nonnegative.
            for v in range(n_nodes):
                dv = dist[v]
                pot[v] = dv if dv is not inf else d_sink
        else:
            # Dijkstra may stop at the sink: nodes not yet finalized
            # carry upper-bound labels ≥ the sink distance, and the
            # standard cap keeps the reduced-cost invariant intact.
            for v in range(n_nodes):
                dv = dist[v]
                pot[v] += dv if dv < d_sink else d_sink

        v = _SINK
        while v != _SRC:
            r = par[v]
            cap[r] -= 1
            cap[r ^ 1] += 1
            v = heads[r >> 1] if r & 1 else tails[r >> 1]

    return [cap[2 * a] == 0 for a in range(len(tails))]


class FlowExpectFastPath:
    """Reusable FlowExpect decision engine for one stream-model pair.

    Holds the :class:`~repro.flow.prob_table.ProbTable` and the template
    cache that successive decisions share; one instance per simulation
    run (a fresh policy instance per trial keeps trials independent).

    An enabled ``recorder`` (:mod:`repro.obs`) collects per-decision
    solver work (``flow.solves``, ``flow.solver_iterations``, the
    ``flow.solve`` timer, the ``flow.solve_ms`` per-solve series) and
    the probability-memo effectiveness (``prob_table.hits`` /
    ``prob_table.misses`` counters plus the per-decision
    ``prob_table.hit_rate`` series); the default no-op recorder leaves
    the hot path untouched.
    """

    def __init__(
        self,
        r_model: StreamModel,
        s_model: StreamModel,
        recorder: Recorder = NULL_RECORDER,
    ):
        """Bind the model pair and (optionally) an observability sink."""
        self._table = ProbTable(r_model, s_model)
        self._templates: dict[tuple[int, int], LookaheadTemplate] = {}
        self._recorder = recorder
        self._hits_flushed = 0
        self._misses_flushed = 0
        if recorder.enabled:
            self._table.enable_counting()

    def decide(
        self,
        candidates: Sequence[StreamTuple],
        t0: int,
        lookahead: int,
        cache_size: int,
        r_history: Optional[History] = None,
        s_history: Optional[History] = None,
    ) -> FlowExpectDecision:
        """One FlowExpect step; mirrors ``flowexpect_decide`` exactly."""
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        if not candidates:
            return FlowExpectDecision(kept=[], victims=[], expected_benefit=0.0)

        table = self._table
        table.rebind(r_history, s_history)
        n = len(candidates)
        template = self._templates.get((n, lookahead))
        if template is None:
            template = LookaheadTemplate(n, lookahead)
            self._templates[(n, lookahead)] = template

        # Rebind arc costs: one memoized probability per costed arc.
        partner_sides = [partner(c.side) for c in candidates]
        born = template.born
        cost_float = [0.0] * len(template.tails)
        for a, e, dt in template.costed:
            if e < n:
                benefit = table.prob(
                    partner_sides[e], t0 + dt, candidates[e].value
                )
            else:
                benefit = table.expected_match(
                    "RS"[(e - n) % 2], t0 + born[e], t0 + dt
                )
            cost_float[a] = -benefit

        # Integer costs, shifted to make room for the uid-rank tie-break
        # perturbation on the source arcs — the same scheme the reference
        # solver applies, so both paths share one unique optimal kept-set.
        cost_int = [
            int(round(w * COST_SCALE)) << n for w in cost_float
        ]
        by_uid = sorted(range(n), key=lambda p: candidates[p].uid)
        for rank, p in enumerate(by_uid):
            cost_int[template.src_arcs[p]] += 1 << rank

        amount = min(cache_size, n)
        rec = self._recorder
        if rec.enabled:
            solve_start = time.perf_counter()
            with rec.timer("flow.solve"):
                used = solve_unit_flow(template, cost_int, amount)
            solve_ms = (time.perf_counter() - solve_start) * 1e3
            rec.count("flow.solves")
            rec.count("flow.solver_iterations", amount)
            rec.series("flow.solve_ms", t0, solve_ms)
            # Flush the memo tallies accumulated since the last decision.
            table_hits, table_misses = table.hits, table.misses
            d_hits = table_hits - self._hits_flushed
            d_misses = table_misses - self._misses_flushed
            if d_hits > 0:
                rec.count("prob_table.hits", d_hits)
                self._hits_flushed = table_hits
            if d_misses > 0:
                rec.count("prob_table.misses", d_misses)
                self._misses_flushed = table_misses
            # Per-decision memo effectiveness (fraction of this step's
            # probability lookups answered from the memo).
            lookups = d_hits + d_misses
            if lookups > 0:
                rec.series("prob_table.hit_rate", t0, d_hits / lookups)
        else:
            used = solve_unit_flow(template, cost_int, amount)

        kept_mask = [used[template.src_arcs[p]] for p in range(n)]
        benefit = -sum(
            w for a, w in enumerate(cost_float) if used[a] and w
        )
        return FlowExpectDecision(
            kept=[c for c, k in zip(candidates, kept_mask) if k],
            victims=[c for c, k in zip(candidates, kept_mask) if not k],
            expected_benefit=benefit,
        )


def flowexpect_decide_fast(
    candidates: Sequence[StreamTuple],
    t0: int,
    lookahead: int,
    cache_size: int,
    r_model: StreamModel,
    s_model: StreamModel,
    r_history: Optional[History] = None,
    s_history: Optional[History] = None,
) -> FlowExpectDecision:
    """One-shot fast-path decision (signature of ``flowexpect_decide``).

    Builds a throwaway :class:`FlowExpectFastPath`; callers deciding
    every step should hold one instance instead to reuse its tables.
    """
    return FlowExpectFastPath(r_model, s_model).decide(
        candidates, t0, lookahead, cache_size, r_history, s_history
    )
