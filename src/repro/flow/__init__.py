"""Min-cost-flow algorithms: FlowExpect (Section 3) and OPT-offline [8]."""

from .brute_force import (
    brute_force_adaptive_expectation,
    brute_force_offline_benefit,
    brute_force_predetermined_expectation,
)
from .fastpath import (
    FlowExpectFastPath,
    LookaheadTemplate,
    flowexpect_decide_fast,
)
from .flowexpect import FlowExpectDecision, flowexpect_decide
from .graph import LookaheadGraph, build_lookahead_graph, expected_match_prob
from .opt_offline import OfflineSolution, match_times, solve_opt_offline
from .prob_table import ProbTable
from .solver import COST_SCALE, solve_min_cost_flow

__all__ = [
    "COST_SCALE",
    "FlowExpectDecision",
    "FlowExpectFastPath",
    "LookaheadGraph",
    "LookaheadTemplate",
    "OfflineSolution",
    "ProbTable",
    "brute_force_adaptive_expectation",
    "brute_force_offline_benefit",
    "brute_force_predetermined_expectation",
    "build_lookahead_graph",
    "expected_match_prob",
    "flowexpect_decide",
    "flowexpect_decide_fast",
    "match_times",
    "solve_min_cost_flow",
    "solve_opt_offline",
]
