"""FlowExpect: online expected-benefit min-cost-flow decisions (Section 3).

At every step, FlowExpect asks: given the cache contents and the two
arrivals of the current time, which tuples should be discarded to
maximize the *expected* number of results over the next ``l`` steps?  It
answers by building the Section-3.1 look-ahead graph and solving a
min-cost flow; the candidates left without flow are discarded.  The
decision is recomputed from scratch at the next step with the newly
observed arrivals (unlike OPT-offline, which solves once with full
knowledge).

Section 3.4 proves FlowExpect is *suboptimal* even with unbounded
look-ahead, because the flow only ranges over predetermined decision
sequences, not strategies that adapt to future observations; the test
suite reproduces the paper's 1.75-vs-1.6 counterexample with this exact
code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.tuples import StreamTuple
from ..streams.base import History, StreamModel
from .graph import build_lookahead_graph
from .solver import solve_min_cost_flow

__all__ = ["FlowExpectDecision", "flowexpect_decide"]


@dataclass
class FlowExpectDecision:
    """One FlowExpect step: who to keep, who to evict, at what value."""

    kept: list[StreamTuple]
    victims: list[StreamTuple]
    #: Expected benefit over the look-ahead window of the chosen sequence
    #: (the negated min-cost).
    expected_benefit: float


def flowexpect_decide(
    candidates: Sequence[StreamTuple],
    t0: int,
    lookahead: int,
    cache_size: int,
    r_model: StreamModel,
    s_model: StreamModel,
    r_history: History | None = None,
    s_history: History | None = None,
) -> FlowExpectDecision:
    """Solve one FlowExpect step and split candidates into kept/victims."""
    if not candidates:
        return FlowExpectDecision(kept=[], victims=[], expected_benefit=0.0)
    lookahead_graph = build_lookahead_graph(
        candidates,
        t0,
        lookahead,
        r_model,
        s_model,
        r_history,
        s_history,
        cache_size=cache_size,
    )
    flow_dict, cost = solve_min_cost_flow(
        lookahead_graph.graph,
        ("src",),
        ("sink",),
        lookahead_graph.flow_size,
        tie_break_arcs=lookahead_graph.tie_break_arcs(),
    )
    kept_uids = lookahead_graph.kept_uids(flow_dict)
    kept = [c for c in candidates if c.uid in kept_uids]
    victims = [c for c in candidates if c.uid not in kept_uids]
    return FlowExpectDecision(
        kept=kept, victims=victims, expected_benefit=-cost
    )
