"""FlowExpect's look-ahead flow graph -- Section 3.1.

The graph captures every *predetermined* sequence of cache replacement
decisions over the interval ``[t0, t0 + l − 1]``:

* Slice ``G_t0`` holds one *determined* node per candidate tuple (the
  ``k`` cached tuples plus the joinable arrivals of the current step).
* Each later slice ``G_t`` copies all nodes of ``G_{t−1}`` and adds two
  *undetermined* nodes for the (not yet observed) arrivals of step ``t``.
* A horizontal arc keeps a tuple one more step and costs the negated
  expected benefit of joining the partner arrival of the next step;
  non-horizontal arcs (replace a kept tuple by a new arrival) cost 0.
* A feasible integral flow of size ``k`` is exactly one decision
  sequence, and its cost is the negated expected benefit (Theorem 2).

Node encoding: logical entities are ``("c", uid)`` for a determined
candidate and ``("u", side, t_arr)`` for the undetermined arrival of
stream ``side`` at time ``t_arr``; graph nodes are ``(entity, slice_t)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import networkx as nx

from ..core.tuples import StreamTuple, partner
from ..streams.base import History, StreamModel

__all__ = ["LookaheadGraph", "build_lookahead_graph", "expected_match_prob"]

SOURCE = ("src",)
SINK = ("sink",)


def expected_match_prob(
    producer: StreamModel,
    t_produce: int,
    consumer: StreamModel,
    t_consume: int,
    producer_history: History | None,
    consumer_history: History | None,
) -> float:
    """``Σ_v Pr{X^producer_{t_produce} = v} · Pr{X^consumer_{t_consume} = v}``.

    The expected benefit of an *undetermined* tuple (produced at
    ``t_produce``) joining the partner arrival at ``t_consume``.  The two
    streams are governed by independent processes, so the joint
    probability factorizes (both factors conditioned on the observed
    history, as in Section 3.1).
    """
    support = producer.support(t_produce, producer_history)
    total = 0.0
    for v, p in support:
        if p:
            total += p * consumer.prob(t_consume, v, consumer_history)
    return total


@dataclass
class LookaheadGraph:
    """The constructed graph plus the bookkeeping to read decisions back."""

    graph: nx.DiGraph
    #: Node ids of the first slice, keyed by candidate uid.
    first_slice: dict[int, tuple]
    flow_size: int
    lookahead: int

    def kept_uids(self, flow_dict: dict) -> set[int]:
        """Uids of candidates that carry flow out of the source.

        Iterates candidates in uid order; which uids carry flow is made
        deterministic by the solver's tie-break perturbation (see
        :meth:`tie_break_arcs`), not by this read-back.
        """
        kept = set()
        source_flow = flow_dict.get(SOURCE, {})
        for uid in sorted(self.first_slice):
            if source_flow.get(self.first_slice[uid], 0) > 0:
                kept.add(uid)
        return kept

    def tie_break_arcs(self) -> list[tuple]:
        """Source arcs in stable candidate-uid order.

        Handing these to :func:`~repro.flow.solver.solve_min_cost_flow`
        makes the optimal kept-set unique — among equal-cost optima the
        solver prefers keeping lower-uid candidates — so decisions no
        longer depend on platform-sensitive rounding ties.
        """
        return [
            (SOURCE, self.first_slice[uid])
            for uid in sorted(self.first_slice)
        ]


def build_lookahead_graph(
    candidates: Sequence[StreamTuple],
    t0: int,
    lookahead: int,
    r_model: StreamModel,
    s_model: StreamModel,
    r_history: History | None = None,
    s_history: History | None = None,
    cache_size: int | None = None,
) -> LookaheadGraph:
    """Build the Section-3.1 graph for one FlowExpect decision.

    ``candidates`` are the determined tuples of slice ``G_t0`` (cache
    contents plus current arrivals); ``lookahead`` is the paper's ``l``.
    The flow size is ``min(cache_size, len(candidates))``.
    """
    if lookahead < 1:
        raise ValueError("lookahead must be >= 1")
    if cache_size is None:
        cache_size = len(candidates)

    models = {"R": r_model, "S": s_model}
    histories = {"R": r_history, "S": s_history}

    def keep_benefit(entity: tuple, t_next: int) -> float:
        """Expected benefit at ``t_next`` of keeping the entity's tuple."""
        if entity[0] == "c":
            tup = entity[2]
            side = tup.side
            return models[partner(side)].prob(
                t_next, tup.value, histories[partner(side)]
            )
        _, side, t_arr = entity
        return expected_match_prob(
            models[side],
            t_arr,
            models[partner(side)],
            t_next,
            histories[side],
            histories[partner(side)],
        )

    graph = nx.DiGraph()
    graph.add_node(SOURCE)
    graph.add_node(SINK)

    # Logical entities present in each slice, in creation order.
    entities: list[tuple] = [("c", tup.uid, tup) for tup in candidates]
    first_slice: dict[int, tuple] = {}

    # Slice t0: source arcs.
    for entity in entities:
        node = (entity[:2], t0)
        graph.add_node(node)
        graph.add_edge(SOURCE, node, capacity=1, weight=0.0)
        first_slice[entity[1]] = node

    entity_by_key = {entity[:2]: entity for entity in entities}
    last_slice_keys = [entity[:2] for entity in entities]

    for slice_t in range(t0 + 1, t0 + lookahead):
        prev_keys = list(last_slice_keys)
        # Copy previous slice's entities; horizontal arcs carry benefits.
        for key in prev_keys:
            prev_node = (key, slice_t - 1)
            node = (key, slice_t)
            graph.add_node(node)
            benefit = keep_benefit(entity_by_key[key], slice_t)
            graph.add_edge(prev_node, node, capacity=1, weight=-benefit)
        # Two new undetermined arrivals.
        new_keys = []
        for side in ("R", "S"):
            entity = ("u", side, slice_t)
            key = entity[:3]
            entity_by_key[key] = entity
            node = (key, slice_t)
            graph.add_node(node)
            new_keys.append(key)
            # Non-horizontal arcs: any copied tuple may be replaced.
            for old_key in prev_keys:
                graph.add_edge((old_key, slice_t), node, capacity=1, weight=0.0)
        last_slice_keys = prev_keys + new_keys

    # Sink arcs from the final slice, costed as horizontal arcs out of it.
    final_t = t0 + lookahead - 1
    for key in last_slice_keys:
        benefit = keep_benefit(entity_by_key[key], final_t + 1)
        graph.add_edge((key, final_t), SINK, capacity=1, weight=-benefit)

    flow_size = min(cache_size, len(candidates))
    return LookaheadGraph(
        graph=graph,
        first_slice=first_slice,
        flow_size=flow_size,
        lookahead=lookahead,
    )
