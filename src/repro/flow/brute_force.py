"""Brute-force optimal offline join scheduling, for validation only.

Enumerates every reachable cache state over time with memoization and
returns the maximum number of join results.  Exponential in cache size ×
length -- usable only on tiny instances, where it certifies that
:func:`~repro.flow.opt_offline.solve_opt_offline` is exactly optimal.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from ..streams.base import Value

__all__ = [
    "brute_force_offline_benefit",
    "brute_force_adaptive_expectation",
    "brute_force_predetermined_expectation",
]


def brute_force_offline_benefit(
    r_values: Sequence[Value],
    s_values: Sequence[Value],
    cache_size: int,
    max_states: int = 2_000_000,
    band: int = 0,
) -> int:
    """Maximum achievable join-result count for fully known streams.

    Tuples are identified by ``(side, arrival)``.  The state after step
    ``t`` is the frozenset of cached tuples; transitions admit any subset
    of {new arrivals} and evict down to capacity in all possible ways.
    ``band > 0`` uses the band-join predicate.
    """
    n = min(len(r_values), len(s_values))
    states_seen = 0

    from itertools import combinations

    def matches(value, partner_value) -> bool:
        if value is None or partner_value is None:
            return False
        if band == 0:
            return partner_value == value
        return abs(int(partner_value) - int(value)) <= band

    def step(t: int, cache: frozenset) -> int:
        nonlocal states_seen
        states_seen += 1
        if states_seen > max_states:
            raise RuntimeError("state budget exhausted; instance too large")
        if t == n:
            return 0
        # Matches collected at step t by cached tuples.
        gained = 0
        for (side, arrival, value) in cache:
            partner_value = s_values[t] if side == "R" else r_values[t]
            if matches(value, partner_value):
                gained += 1
        # Candidates: cache plus joinable arrivals of step t.
        new = []
        if r_values[t] is not None:
            new.append(("R", t, r_values[t]))
        if s_values[t] is not None:
            new.append(("S", t, s_values[t]))
        candidates = list(cache) + new
        n_keep = min(cache_size, len(candidates))
        best = 0
        seen_keeps = set()
        for keep in combinations(candidates, n_keep):
            key = frozenset(keep)
            if key in seen_keeps:
                continue
            seen_keeps.add(key)
            best = max(best, solve(t + 1, key))
        return gained + best

    @lru_cache(maxsize=None)
    def solve(t: int, cache: frozenset) -> int:
        return step(t, cache)

    return solve(0, frozenset())


def brute_force_adaptive_expectation(
    scenario_steps: Sequence[Sequence[tuple[Value, Value, float]]],
    initial_cache: Sequence[tuple[str, Value]],
    cache_size: int,
) -> float:
    """Optimal *adaptive* expected benefit for a small stochastic scenario.

    ``scenario_steps[t]`` lists the possible ``(r_value, s_value, prob)``
    outcomes of step ``t`` (probabilities summing to 1).  The optimum
    ranges over strategies that may condition every decision on all
    values observed so far -- the full space of Section 3.3/3.4, which
    FlowExpect's predetermined sequences cannot cover.  Used to reproduce
    the 1.75-vs-1.6 example of Section 3.4.

    Tuples are identified by ``(side, arrival, value)``; the initial
    cache entries use arrival ``-1``.
    """
    from itertools import combinations

    n = len(scenario_steps)

    def expectation(t: int, cache: frozenset) -> float:
        if t == n:
            return 0.0
        total = 0.0
        for r_val, s_val, prob in scenario_steps[t]:
            if prob == 0.0:
                continue
            gained = 0
            for (side, _arr, value) in cache:
                partner_value = s_val if side == "R" else r_val
                if value is not None and partner_value == value:
                    gained += 1
            new = []
            if r_val is not None:
                new.append(("R", t, r_val))
            if s_val is not None:
                new.append(("S", t, s_val))
            candidates = list(cache) + new
            n_keep = min(cache_size, len(candidates))
            best = float("-inf")
            seen = set()
            for keep in combinations(candidates, n_keep):
                key = frozenset(keep)
                if key in seen:
                    continue
                seen.add(key)
                best = max(best, expectation(t + 1, key))
            if best == float("-inf"):
                best = 0.0
            total += prob * (gained + best)
        return total

    cache0 = frozenset(
        (side, -1, value) for side, value in initial_cache
    )
    return expectation(0, cache0)


def brute_force_predetermined_expectation(
    candidates,
    t0: int,
    lookahead: int,
    cache_size: int,
    r_model,
    s_model,
    r_history=None,
    s_history=None,
) -> float:
    """Optimal expected benefit over *predetermined* decision sequences.

    Enumerates exactly the space FlowExpect's min-cost flow ranges over
    (Section 3.1): at every future step, a fixed (value-independent)
    choice of which tuples to keep, where each new arrival may replace at
    most one kept tuple.  Theorem 2 says the flow optimum equals this
    value; tests assert the two agree, which validates the graph
    construction and cost assignment independently of networkx.

    Entities mirror the graph's nodes: determined candidates and
    undetermined future arrivals ``("u", side, t)``.  Transition benefits
    reuse the same probability computations as the graph builder.
    """
    from itertools import combinations

    from ..core.tuples import partner
    from .graph import expected_match_prob

    models = {"R": r_model, "S": s_model}
    histories = {"R": r_history, "S": s_history}

    def keep_benefit(entity, t_next: int) -> float:
        if entity[0] == "c":
            _, _uid, side, value = entity
            return models[partner(side)].prob(
                t_next, value, histories[partner(side)]
            )
        _, side, t_arr = entity
        return expected_match_prob(
            models[side],
            t_arr,
            models[partner(side)],
            t_next,
            histories[side],
            histories[partner(side)],
        )

    initial_entities = [
        ("c", tup.uid, tup.side, tup.value) for tup in candidates
    ]
    flow_size = min(cache_size, len(initial_entities))

    def best(state: tuple, slice_t: int) -> float:
        """Max expected benefit from slice ``slice_t`` onward."""
        if slice_t == t0 + lookahead - 1:
            # Sink arcs: every kept entity collects one more benefit.
            return sum(keep_benefit(e, slice_t + 1) for e in state)
        next_t = slice_t + 1
        new_entities = [("u", "R", next_t), ("u", "S", next_t)]
        best_value = float("-inf")
        state_list = list(state)
        # Every cached entity collects its benefit at next_t *before* any
        # replacement (the horizontal arc into slice next_t precedes the
        # non-horizontal replacement arc; equivalently, the simulator
        # counts joins before evictions).
        gained = sum(keep_benefit(e, next_t) for e in state_list)
        # Then replace r of the entities with r of the new arrivals.
        for r in range(0, min(2, len(state_list)) + 1):
            for dropped in combinations(range(len(state_list)), r):
                kept = [
                    e for i, e in enumerate(state_list) if i not in dropped
                ]
                for added in combinations(new_entities, r):
                    next_state = tuple(sorted(kept + list(added)))
                    best_value = max(
                        best_value, gained + best(next_state, next_t)
                    )
        return best_value

    if flow_size == 0:
        return 0.0
    overall = float("-inf")
    for initial in combinations(initial_entities, flow_size):
        overall = max(overall, best(tuple(sorted(initial)), t0))
    return overall
