"""OPT-offline: the optimal offline join cache schedule (Das et al. [8]).

With both streams fully known, the MAX-subset-optimal sequence of cache
replacement decisions is computable as a min-cost flow.  This module uses
a *compact* formulation equivalent to the slice graph of Section 3.1 but
with O(#matches) arcs instead of O(n²) nodes, so paper-scale runs (5000
steps) are feasible:

* One time node ``T_t`` per step, with capacity-``k`` zero-cost arcs
  ``T_t → T_{t+1}`` carrying idle cache slots.
* For each tuple ``x`` arriving at ``a_x`` with future match times
  ``m_1 < ... < m_j`` (steps at which the partner stream produces
  ``v_x``), a private chain ``T_{a_x} → x_1 → ... → x_j`` whose arcs cost
  −1 each (one result per match reached), and zero-cost exits
  ``x_i → T_{m_i}``.

A unit of flow is one cache slot.  Entering ``x``'s chain at ``T_{a_x}``
caches the tuple at its arrival (the only time it is available); exiting
at ``x_i`` evicts it right after collecting the match at ``m_i``.
Evicting between matches is never better than evicting at the previous
match, and caching past the last match is useless, so the restriction to
match-time evictions is lossless.  Flow conservation makes every unit
cross each time column exactly once -- either on the time arc (idle /
uninstrumented slot) or inside a chain (a cached tuple) -- so cache
occupancy never exceeds ``k``.

The result maps every tuple to an eviction time; replaying it through the
ordinary simulator (:class:`~repro.policies.scheduled.ScheduledPolicy`)
reproduces exactly ``−cost`` join results, which tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

import networkx as nx

from ..streams.base import Value

__all__ = ["OfflineSolution", "solve_opt_offline", "match_times"]


@dataclass
class OfflineSolution:
    """An optimal offline schedule.

    ``eviction_time[(side, arrival)]`` is the step at which the tuple
    should be evicted; equal to ``arrival`` when the tuple should never
    be cached.  ``total_benefit`` is the optimal number of join results
    generated from the cache.
    """

    eviction_time: dict[tuple[str, int], int]
    total_benefit: int
    cache_size: int
    length: int
    #: Tuples the optimizer caches at their arrival.
    cached: set[tuple[str, int]] = field(default_factory=set)

    def scheduled_eviction(self, side: str, arrival: int) -> int:
        """When the optimizer evicts the given tuple (arrival if never cached)."""
        return self.eviction_time.get((side, arrival), arrival)


def match_times(
    values: Sequence[Value], partner_values: Sequence[Value], band: int = 0
) -> list[list[int]]:
    """For each tuple, the future steps at which the partner matches it.

    ``result[t]`` lists the times ``t' > t`` with
    ``partner_values[t'] == values[t]`` (empty for "−" tuples).  With
    ``band > 0`` the predicate generalizes to
    ``|partner_values[t'] − values[t]| ≤ band`` (integer values only).
    """
    if band < 0:
        raise ValueError("band must be nonnegative")
    occurrences: dict[Hashable, list[int]] = {}
    for t, v in enumerate(partner_values):
        if v is not None:
            occurrences.setdefault(v, []).append(t)

    def future_occurrences(v: Hashable, after: int) -> list[int]:
        occs = occurrences.get(v, [])
        lo, hi = 0, len(occs)
        while lo < hi:
            mid = (lo + hi) // 2
            if occs[mid] <= after:
                lo = mid + 1
            else:
                hi = mid
        return occs[lo:]

    out: list[list[int]] = []
    for t, v in enumerate(values):
        if v is None:
            out.append([])
            continue
        if band == 0:
            out.append(future_occurrences(v, t))
            continue
        merged: set[int] = set()
        for offset in range(-band, band + 1):
            merged.update(future_occurrences(int(v) + offset, t))
        out.append(sorted(merged))
    return out


def solve_opt_offline(
    r_values: Sequence[Value],
    s_values: Sequence[Value],
    cache_size: int,
    band: int = 0,
) -> OfflineSolution:
    """Compute the optimal offline schedule for the given sequences.

    ``band > 0`` solves the band-join generalization (a cached tuple
    matches partner arrivals within ``band`` of its value).
    """
    if cache_size < 1:
        raise ValueError("cache_size must be >= 1")
    n = min(len(r_values), len(s_values))
    eviction: dict[tuple[str, int], int] = {}
    cached: set[tuple[str, int]] = set()
    if n == 0:
        return OfflineSolution(eviction, 0, cache_size, 0, cached)

    r_matches = match_times(r_values[:n], s_values[:n], band)
    s_matches = match_times(s_values[:n], r_values[:n], band)

    graph = nx.DiGraph()
    for t in range(n):
        graph.add_edge(("T", t), ("T", t + 1), capacity=cache_size, weight=0)

    chains: list[tuple[str, int, list[int]]] = []
    for side, all_matches, values in (
        ("R", r_matches, r_values),
        ("S", s_matches, s_values),
    ):
        for t in range(n):
            eviction[(side, t)] = t  # default: never cached
            matches = all_matches[t]
            if matches:
                chains.append((side, t, matches))

    for side, arrival, matches in chains:
        prev = ("T", arrival)
        for i, m in enumerate(matches):
            node = ("x", side, arrival, i)
            graph.add_edge(prev, node, capacity=1, weight=-1)
            graph.add_edge(node, ("T", m), capacity=1, weight=0)
            prev = node

    graph.nodes[("T", 0)]["demand"] = -cache_size
    graph.nodes[("T", n)]["demand"] = cache_size

    cost, flow_dict = nx.network_simplex(graph)

    for side, arrival, matches in chains:
        if flow_dict[("T", arrival)].get(("x", side, arrival, 0), 0) <= 0:
            continue
        cached.add((side, arrival))
        # Follow the chain to the exit.
        evict_at = matches[0]
        for i, m in enumerate(matches):
            node = ("x", side, arrival, i)
            if flow_dict[node].get(("T", m), 0) > 0:
                evict_at = m
                break
        eviction[(side, arrival)] = evict_at

    return OfflineSolution(
        eviction_time=eviction,
        total_benefit=-cost,
        cache_size=cache_size,
        length=n,
        cached=cached,
    )
