"""Memoized probability lookups for the FlowExpect hot path.

Building one look-ahead graph queries ``StreamModel.prob`` and
``StreamModel.support`` for the same ``(time, value)`` pairs many times
over: every candidate sharing a join value repeats the same partner-side
``prob`` call on every slice, and every undetermined arrival repeats the
same support-weighted convolution.  Successive FlowExpect steps then
repeat most of those queries again, shifted by one step — the stream-join
caching insight (CACHEJOIN-style operators win by keeping intermediate
lookup structures alive across arrivals, not recomputing them per tuple).

:class:`ProbTable` memoizes the three primitives behind the graph's arc
costs, keyed by ``(side, time, value)`` / ``(side, t_produce,
t_consume)`` *under the currently bound history anchors*.  The anchors
(the :class:`~repro.streams.base.History` objects conditioning each
side's predictions) are part of every cached entry's effective key:
rebinding to a different anchor invalidates the affected entries.  For
independent models the anchor is always ``None``, so the table persists
across the whole run and each probability is paid once per ``(t, v)``
pair; for Markov models the anchor advances every step and the table
still collapses the per-arc duplication within one decision.

All cached values are produced by the *same calls* the reference graph
builder makes (``model.prob``, ``model.support``, and the summation
order of :func:`~repro.flow.graph.expected_match_prob`), so memoized
costs are bit-identical to freshly computed ones — a prerequisite for
the fast path's decisions matching the reference path exactly.
"""

from __future__ import annotations

from typing import Optional

from ..core.tuples import partner
from ..streams.base import History, StreamModel, Value

__all__ = ["ProbTable"]

#: Safety valve: a table growing past this many memoized probabilities is
#: cleared wholesale.  Reached only by very long runs of time-dependent
#: models; correctness never depends on retention.
MAX_ENTRIES = 1 << 20


class ProbTable:
    """Per-model-pair memo of ``prob`` / ``support`` / expected-match."""

    def __init__(self, r_model: StreamModel, s_model: StreamModel):
        """Empty memo over the ``R``/``S`` model pair."""
        self._models = {"R": r_model, "S": s_model}
        self._anchors: dict[str, Optional[History]] = {"R": None, "S": None}
        #: (side, t, value) -> Pr{X^side_t = value | anchor[side]}
        self._prob: dict[tuple, float] = {}
        #: (side, t) -> side's joinable support at t (list of (v, p))
        self._support: dict[tuple, list[tuple[int, float]]] = {}
        #: (producer side, t_produce, t_consume) -> expected match prob
        self._emp: dict[tuple, float] = {}
        #: Memo hit/miss tallies, maintained only after
        #: :meth:`enable_counting` (one predictable branch per lookup
        #: otherwise — the zero-overhead contract of :mod:`repro.obs`).
        self.hits = 0
        self.misses = 0
        self._counting = False

    def enable_counting(self) -> None:
        """Start tallying memo hits/misses in :attr:`hits`/:attr:`misses`.

        Called by instrumented consumers
        (:class:`~repro.flow.fastpath.FlowExpectFastPath` under an
        enabled recorder); uninstrumented lookups skip the bookkeeping.
        """
        self._counting = True

    def rebind(
        self,
        r_history: Optional[History],
        s_history: Optional[History],
    ) -> None:
        """Bind the history anchors all subsequent lookups condition on.

        Entries cached under a different anchor for a side are dropped
        (they can never be queried again: FlowExpect only conditions on
        the latest observation).  Binding the same anchors is free, which
        is what keeps the table warm across steps of independent models.
        """
        for side, history in (("R", r_history), ("S", s_history)):
            if self._anchors[side] != history:
                self._anchors[side] = history
                self._drop_side(side)

    def _drop_side(self, side: str) -> None:
        self._prob = {k: v for k, v in self._prob.items() if k[0] != side}
        self._support = {
            k: v for k, v in self._support.items() if k[0] != side
        }
        # Expected-match entries condition on both sides' anchors: the
        # producer's support and the consumer's prob.  Either side
        # changing invalidates every pair involving it — which is both
        # directions, so drop them all.
        self._emp.clear()

    def _room(self) -> None:
        if (
            len(self._prob) + len(self._support) + len(self._emp)
            > MAX_ENTRIES
        ):
            self._prob.clear()
            self._support.clear()
            self._emp.clear()

    def prob(self, side: str, t: int, value: Value) -> float:
        """``Pr{X^side_t = value}`` under ``side``'s bound anchor."""
        key = (side, t, value)
        hit = self._prob.get(key)
        if hit is None:
            self._room()
            hit = self._models[side].prob(t, value, self._anchors[side])
            self._prob[key] = hit
            if self._counting:
                self.misses += 1
        elif self._counting:
            self.hits += 1
        return hit

    def support(self, side: str, t: int) -> list[tuple[int, float]]:
        """``side``'s joinable values at ``t`` under its bound anchor."""
        key = (side, t)
        hit = self._support.get(key)
        if hit is None:
            self._room()
            hit = self._models[side].support(t, self._anchors[side])
            self._support[key] = hit
            if self._counting:
                self.misses += 1
        elif self._counting:
            self.hits += 1
        return hit

    def expected_match(
        self, producer_side: str, t_produce: int, t_consume: int
    ) -> float:
        """Expected benefit of an undetermined ``producer_side`` arrival.

        Matches :func:`repro.flow.graph.expected_match_prob` term for
        term (same support order, same accumulation order), so the result
        is bit-identical to the reference computation.
        """
        key = (producer_side, t_produce, t_consume)
        hit = self._emp.get(key)
        if hit is None:
            self._room()
            consumer = partner(producer_side)
            total = 0.0
            for v, p in self.support(producer_side, t_produce):
                if p:
                    total += p * self.prob(consumer, t_consume, v)
            self._emp[key] = total
            hit = total
            if self._counting:
                self.misses += 1
        elif self._counting:
            self.hits += 1
        return hit
