"""repro: a reproduction of "On Joining and Caching Stochastic Streams".

A framework for cache replacement in stream joins under the MAX-subset
metric, driven by known or fitted statistical properties of the input
streams (Xie, Yang, Chen; SIGMOD 2005).

Layout
------
``repro.streams``
    Stochastic stream models (offline, stationary, linear trend, random
    walk, AR(1)) and the caching→joining reduction.
``repro.core``
    Expected cumulative benefits, dominance tests, HEEB with its lifetime
    estimators, and incremental / precomputed evaluation.
``repro.flow``
    FlowExpect's look-ahead min-cost flow and the OPT-offline solver.
``repro.sim``
    Join and cache simulators plus multi-run orchestration.
``repro.policies``
    RAND, PROB, LIFE, LRU(-k), LFU, LFD, HEEB, FlowExpect, OPT replay,
    and the provably optimal case-study policies.
``repro.experiments``
    The paper's experiment configurations and one harness per figure.

Quickstart
----------
>>> import numpy as np
>>> from repro import core, streams, policies, sim
>>> r = streams.LinearTrendStream(streams.bounded_uniform(10), lag=1)
>>> s = streams.LinearTrendStream(streams.bounded_uniform(15))
>>> rng = np.random.default_rng(0)
>>> heeb = policies.HeebPolicy(policies.TrendJoinHeeb(core.LExp(10.0)))
>>> simulator = sim.JoinSimulator(10, heeb, r_model=r, s_model=s)
>>> result = simulator.run(r.sample_path(500, rng), s.sample_path(500, rng))
>>> result.total_results > 0
True
"""

from . import analysis, core, experiments, flow, policies, sim, streams

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "experiments",
    "flow",
    "policies",
    "sim",
    "streams",
    "__version__",
]
