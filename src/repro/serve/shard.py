"""Join-attribute partitioning for the sharded streaming server.

The server (:mod:`repro.serve.server`) splits the join-attribute space
across shards so each shard owns a disjoint slice of the key space —
the partitioning blueprint of "Optimizing Multiple Multi-Way Stream
Joins" (Dossinger & Michel): tuples that could ever join carry the same
join value, so routing by value guarantees that all matches for a key
happen inside one shard and no cross-shard probe is ever needed.

Two properties matter and are pinned by hypothesis tests
(``tests/test_serve_sharding.py``):

* **determinism / totality** — every key maps to exactly one shard,
  stably across processes and runs.  Python's built-in ``hash`` is
  salted per process for strings, so routing uses a keyed BLAKE2 digest
  of the value's ``repr`` instead.
* **reshard conservation** — repartitioning cached tuples from ``N`` to
  ``M`` shards preserves the multiset of tuples (nothing duplicated,
  nothing dropped), and the result equals partitioning the union from
  scratch.
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Iterable, Sequence

from ..core.tuples import StreamTuple

__all__ = ["stable_hash", "ShardRouter", "partition_tuples", "reshard"]


def stable_hash(value: Hashable) -> int:
    """Process-stable 64-bit hash of a join-attribute value.

    Built on BLAKE2b over ``repr(value)`` so equal values — ints,
    floats, strings, tuples — always land on the same shard regardless
    of ``PYTHONHASHSEED``, interpreter, or machine.  ``repr`` is the
    identity here: two values with equal ``repr`` are the same key.
    """
    digest = hashlib.blake2b(
        repr(value).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class ShardRouter:
    """Maps join-attribute values to one of ``n_shards`` shards."""

    def __init__(self, n_shards: int):
        """Validate and bind the shard count."""
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards

    def shard_for(self, value: Hashable) -> int:
        """The single shard owning ``value`` (``0 <= shard < n_shards``)."""
        if self.n_shards == 1:
            return 0
        return stable_hash(value) % self.n_shards

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"ShardRouter(n_shards={self.n_shards})"


def partition_tuples(
    tuples: Iterable[StreamTuple], router: ShardRouter
) -> list[list[StreamTuple]]:
    """Split tuples into per-shard lists by their join value.

    Order within a shard follows the input order, so partitioning a
    deterministically ordered collection is itself deterministic.
    """
    shards: list[list[StreamTuple]] = [[] for _ in range(router.n_shards)]
    for tup in tuples:
        shards[router.shard_for(tup.value)].append(tup)
    return shards


def reshard(
    shards: Sequence[Iterable[StreamTuple]], new_router: ShardRouter
) -> list[list[StreamTuple]]:
    """Repartition per-shard tuple collections onto a new shard count.

    Conservation contract: the multiset of tuples out equals the
    multiset in — resharding moves tuples, it never invents or drops
    them.  Equivalent to ``partition_tuples(union, new_router)`` with
    the union taken shard by shard in order.
    """
    union: list[StreamTuple] = []
    for shard in shards:
        union.extend(shard)
    return partition_tuples(union, new_router)
