"""Streaming service tier: asyncio join/cache serving over the sim core.

The roadmap's production-scale direction: the pure per-step transitions
of :mod:`repro.sim.step` driven by an asyncio event loop
(:class:`~repro.serve.server.StreamServer`) instead of a simulator
``for`` loop.  Concurrent producers push arrivals; the join-attribute
space partitions across per-shard caches (:mod:`repro.serve.shard`);
bounded queues apply backpressure; hit-rate/occupancy/queue-depth flow
through the existing :mod:`repro.obs` recorder telemetry.  The replay
clients (:mod:`repro.serve.replay`) feed recorded traces or seeded
streams back through a server — the basis of the sim-vs-server parity
guarantee pinned by ``tests/test_serve_parity.py`` and, for the
Appendix-C multi-join topologies, ``tests/test_serve_multi.py``.

At runtime the request path is span-timed (:mod:`repro.obs.spans`) into
mergeable latency histograms, and an opt-in endpoint
(:mod:`repro.serve.metrics`) serves Prometheus ``/metrics`` and JSON
``/health`` live — watch it with ``python -m repro.obs top``.

See ``docs/SERVING.md`` for the architecture walkthrough.
"""

from .metrics import MetricsEndpoint, merged_snapshot, metrics_text, server_health
from .replay import (
    ReplaySummary,
    arrivals_from_trace,
    generate_join_stream,
    generate_multi_join_stream,
    generate_reference_stream,
    replay_join,
    replay_multi,
    replay_reference,
    run_replay,
)
from .server import DEFAULT_QUEUE_MAXSIZE, ServerClosed, Shard, StreamServer
from .shard import ShardRouter, partition_tuples, reshard, stable_hash

__all__ = [
    "DEFAULT_QUEUE_MAXSIZE",
    "MetricsEndpoint",
    "ReplaySummary",
    "ServerClosed",
    "Shard",
    "ShardRouter",
    "StreamServer",
    "arrivals_from_trace",
    "generate_join_stream",
    "generate_multi_join_stream",
    "generate_reference_stream",
    "merged_snapshot",
    "metrics_text",
    "partition_tuples",
    "replay_join",
    "replay_multi",
    "replay_reference",
    "reshard",
    "run_replay",
    "server_health",
    "stable_hash",
]
