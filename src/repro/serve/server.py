"""Push-driven asyncio join/cache service over the shared step functions.

:class:`StreamServer` is the serving tier promised by the roadmap: the
same per-step transition the simulators drive with a ``for`` loop
(:mod:`repro.sim.step`), driven instead by an asyncio event loop fed by
concurrent producers.  Because both drivers call the *same* pure
transition over the *same* state objects, a single-shard server replay
of a seeded stream is decision-identical to the scalar simulator — the
parity suite (``tests/test_serve_parity.py``,
``tests/test_serve_multi.py``) pins kept/victim uids, hit counts, and
:mod:`repro.obs` counters byte for byte.  All three problem kinds are
served: two-stream joins, the caching problem, and the Appendix-C
multi-join topologies (``kind="multi_join"``, fed via
:meth:`StreamServer.submit_multi`).

Architecture
------------
* **Shards.**  The join-attribute space is partitioned across
  ``n_shards`` independent caches (:class:`~repro.serve.shard.ShardRouter`),
  each with its own policy instance, :class:`~repro.policies.base.PolicyContext`,
  and bounded event queue.  Routing by join value means all matches for
  a key are intra-shard — in the multi-join case every query edge probes
  by the same join attribute, so one value-keyed router covers all
  queries and no cross-shard probe exists.  Each shard's capacity is
  ``spec.cache_size`` (total capacity scales with shards).
* **Backpressure.**  Each shard queue is a bounded :class:`asyncio.Queue`;
  when a queue is full, ``submit`` awaits — producers slow to the rate
  of the slowest shard instead of growing memory without bound.
  Engagements are counted (``serve.backpressure.engaged``) and queue
  depth is reported through the recorder's ``series()`` telemetry.
* **Instrumentation.**  With one shard the caller's recorder is used
  directly (exact simulator parity, trace events included).  With many
  shards each shard records into a :meth:`~repro.obs.recorder.Recorder.fork`
  of the caller's recorder and the snapshots are merged back additively
  at :meth:`StreamServer.stop` — the same pattern the parallel engine
  uses for worker processes.
* **Runtime observability.**  The request path ``submit → route →
  queue_wait → decide → emit`` is span-timed (:mod:`repro.obs.spans`)
  into mergeable log-bucketed latency histograms
  (:mod:`repro.obs.hist`), all guarded so a
  :class:`~repro.obs.NullRecorder` run reads no clocks.  An opt-in
  asyncio endpoint (:meth:`StreamServer.start_metrics`) serves
  Prometheus-text ``/metrics`` and JSON ``/health`` live.
* **Uids.**  Shard ``i`` of ``n`` mints tuple uids ``i, i + n,
  i + 2n, ...`` (a strided :class:`~repro.core.tuples.TupleFactory`),
  so uids are globally unique and deterministic per shard regardless of
  event-loop interleaving — which is what makes live resharding
  (:meth:`StreamServer.reshard`) collision-free.
"""

from __future__ import annotations

import asyncio
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Mapping, Optional, Union

from ..core.tuples import StreamTuple, TupleFactory
from ..obs.hist import HistogramSet, LogHistogram
from ..obs.recorder import NULL_RECORDER, Recorder
from ..obs.spans import SERVE_SPAN_PREFIX, SpanTracker
from ..policies.base import ReplacementPolicy
from ..sim.engine import ExperimentSpec
from ..sim.step import (
    CacheStepState,
    JoinStepState,
    MultiJoinStepState,
    build_multi_join_state,
    cache_step,
    join_step,
    make_cache_state,
    make_join_state,
    multi_join_step,
    multi_partner_names,
)
from ..streams.base import Value
from .shard import ShardRouter, reshard as reshard_tuples

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .metrics import MetricsEndpoint

__all__ = ["Shard", "StreamServer", "ServerClosed"]

#: Queue sentinel telling a shard worker to exit after draining.
_STOP = object()

#: Default bound on each shard's event queue.
DEFAULT_QUEUE_MAXSIZE = 1024


class ServerClosed(RuntimeError):
    """Raised when submitting to a server that is not accepting events."""


class Shard:
    """One shard: its own cache/policy state plus a bounded event queue.

    Created and owned by :class:`StreamServer`; exposed read-only for
    inspection (tests, stats).  ``state`` is a
    :class:`~repro.sim.step.JoinStepState`,
    :class:`~repro.sim.step.CacheStepState`, or
    :class:`~repro.sim.step.MultiJoinStepState`.
    """

    def __init__(
        self,
        index: int,
        state: Union[JoinStepState, CacheStepState, MultiJoinStepState],
        queue_maxsize: int,
    ):
        """Bind the shard's index, step state, and bounded queue."""
        self.index = index
        self.state = state
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_maxsize)
        self.worker: Optional[asyncio.Task] = None
        #: Events this shard's worker has applied.
        self.events_applied = 0
        #: Times a producer found this shard's queue full and had to wait.
        self.backpressure_waits = 0
        #: Seconds producers spent blocked on this shard's full queue.
        self.backpressure_wait_seconds = 0.0
        #: High-water mark of the queue depth observed at enqueue time.
        self.max_queue_depth = 0
        #: Recorder snapshot captured at server stop (sharded mode only).
        self.snapshot: Optional[dict] = None
        #: Worker-side span latency histograms (queue_wait/decide/emit).
        self.hists = HistogramSet()
        #: Span timing for this shard's worker loop; records ``*_ms``
        #: series through the shard recorder and into :attr:`hists`.
        self.spans = SpanTracker(
            state.recorder, self.hists, prefix=SERVE_SPAN_PREFIX
        )
        #: True once :attr:`hists` has been folded into the server-level
        #: set (shard retirement at stop/abort/reshard).
        self.hists_folded = False

    @property
    def alive(self) -> bool:
        """True while this shard's worker task is running."""
        return self.worker is not None and not self.worker.done()

    @property
    def occupancy(self) -> int:
        """Tuples currently cached by this shard."""
        return len(self.state.cache)


class StreamServer:
    """Asyncio join/cache service sharing the simulators' transition.

    Parameters
    ----------
    spec:
        The problem description (``kind`` may be ``"join"``, ``"cache"``,
        or ``"multi_join"`` — the Appendix-C generalization is served
        through :meth:`submit_multi`).  ``cache_size`` is the
        *per-shard* capacity.
    policy_factory:
        Builds a fresh replacement policy per shard, exactly like the
        per-trial factories of :func:`~repro.sim.runner.run_experiment`.
    n_shards:
        Number of independent cache shards (default 1: simulator-parity
        mode, where the caller's recorder is shared verbatim).
    queue_maxsize:
        Bound on each shard's event queue; full queues apply
        backpressure to ``submit`` callers.
    recorder:
        Observability sink (:mod:`repro.obs`).  Counters/series:
        ``serve.ingested``, ``serve.backpressure.engaged``,
        ``serve.queue_depth`` plus everything the step functions emit.
    step_delay:
        Artificial seconds slept per applied event — a slow-consumer
        knob for backpressure tests and demos, 0.0 in production.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        policy_factory: Callable[[], ReplacementPolicy],
        *,
        n_shards: int = 1,
        queue_maxsize: int = DEFAULT_QUEUE_MAXSIZE,
        recorder: Recorder = NULL_RECORDER,
        step_delay: float = 0.0,
    ):
        """Validate the spec and build the (not yet started) shards."""
        if spec.kind not in ("join", "cache", "multi_join"):
            raise ValueError(
                "StreamServer serves 'join', 'cache', or 'multi_join' "
                f"specs, not {spec.kind!r}"
            )
        if spec.kind == "multi_join":
            partner_names = multi_partner_names(spec.queries)
            if spec.models:
                names = list(spec.models)
            else:
                names = []
                for a, b in spec.queries:
                    for name in (a, b):
                        if name not in names:
                            names.append(name)
            missing = set(partner_names) - set(names)
            if missing:
                raise ValueError(f"queries reference unknown streams {missing}")
            self._names: tuple[str, ...] = tuple(names)
        else:
            self._names = ()
        if queue_maxsize < 1:
            raise ValueError("queue_maxsize must be >= 1")
        if step_delay < 0:
            raise ValueError("step_delay must be nonnegative")
        self._spec = spec
        self._policy_factory = policy_factory
        self._recorder = recorder
        self._queue_maxsize = queue_maxsize
        self._step_delay = step_delay
        self._router = ShardRouter(n_shards)
        self._started = False
        self._stopping = False
        self._stopped = False
        #: Arrivals (non-"−" values) accepted by ``submit`` so far.
        self.ingested_arrivals = 0
        #: Total times any producer hit a full queue.
        self.backpressure_waits = 0
        #: Total seconds producers spent blocked on full queues.
        self.backpressure_wait_seconds = 0.0
        #: Server-level latency histograms: producer-side spans plus the
        #: folded state of every retired shard (stop/abort/reshard).
        self._hists = HistogramSet()
        #: Producer-side span timing (submit/route).
        self._spans = SpanTracker(
            recorder, self._hists, prefix=SERVE_SPAN_PREFIX
        )
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None
        self._metrics: Optional["MetricsEndpoint"] = None
        self._shards = [
            self._make_shard(i, n_shards, uid_start=i)
            for i in range(n_shards)
        ]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _make_shard(self, index: int, n_shards: int, uid_start: int) -> Shard:
        """Build one shard with its own policy, state, and recorder."""
        # Single shard shares the caller's recorder verbatim so traces,
        # counters, and series match the scalar simulator exactly; many
        # shards fork and merge at stop (the parallel-engine pattern).
        if n_shards == 1:
            shard_recorder = self._recorder
        else:
            shard_recorder = self._recorder.fork()
        spec = self._spec
        state: Union[JoinStepState, CacheStepState, MultiJoinStepState]
        if spec.kind == "join":
            state = make_join_state(
                spec.cache_size,
                self._policy_factory(),
                window=spec.window,
                band=spec.band,
                r_model=spec.r_model,
                s_model=spec.s_model,
                window_oracle=spec.window_oracle,
                recorder=shard_recorder,
            )
        elif spec.kind == "multi_join":
            state = build_multi_join_state(
                spec.cache_size,
                self._policy_factory(),
                spec.queries,
                list(self._names),
                models=spec.models,
                recorder=shard_recorder,
            )
        else:
            state = make_cache_state(
                spec.cache_size,
                self._policy_factory(),
                reference_model=spec.r_model,
                recorder=shard_recorder,
            )
        state.factory = TupleFactory(start=uid_start, step=n_shards)
        shard = Shard(index, state, self._queue_maxsize)
        # A live metrics endpoint keeps spans on even under a disabled
        # recorder (histograms still fill); new shards inherit that.
        shard.spans.active = self._spans.active
        return shard

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def spec(self) -> ExperimentSpec:
        """The problem description this server was built for."""
        return self._spec

    @property
    def names(self) -> tuple[str, ...]:
        """Stream names served, in arrival order (multi-join kind;
        empty for join/cache)."""
        return self._names

    @property
    def n_shards(self) -> int:
        """Current number of shards."""
        return self._router.n_shards

    @property
    def shards(self) -> tuple[Shard, ...]:
        """The live shard objects, in index order (read-only view)."""
        return tuple(self._shards)

    @property
    def recorder(self) -> Recorder:
        """The server-level observability sink."""
        return self._recorder

    @property
    def uptime_seconds(self) -> float:
        """Monotonic seconds since :meth:`start` (frozen at stop)."""
        if self._started_at is None:
            return 0.0
        end = self._stopped_at
        return (end if end is not None else perf_counter()) - self._started_at

    @property
    def backpressure_duty(self) -> float:
        """Fraction of server uptime producers spent blocked on full
        queues (0.0 before start)."""
        uptime = self.uptime_seconds
        if uptime <= 0.0:
            return 0.0
        return min(1.0, self.backpressure_wait_seconds / uptime)

    @property
    def metrics_endpoint(self) -> Optional["MetricsEndpoint"]:
        """The live scrape endpoint, or ``None`` when not started."""
        return self._metrics

    def latency_histograms(self) -> dict[str, LogHistogram]:
        """Merged span-latency histograms across all shards.

        Combines the server-level set (producer-side spans plus every
        retired shard's folded state) with the live shards' sets, by
        exact same-layout bucket addition — total counts are preserved
        across fork/merge and :meth:`reshard` by construction.
        """
        merged = self._hists.copy()
        for shard in self._shards:
            if not shard.hists_folded and shard.hists:
                merged.merge(shard.hists.state())
        return merged.hists

    def span_p99_ms(self, span: str = "decide") -> Optional[float]:
        """P99 of one request-path span in milliseconds, or ``None``.

        ``span`` is the bare span name (``submit``, ``route``,
        ``queue_wait``, ``decide``, ``emit``).
        """
        hist = self.latency_histograms().get(f"{SERVE_SPAN_PREFIX}{span}_ms")
        if hist is None or hist.count == 0:
            return None
        return hist.quantile(0.99)

    @property
    def total_results(self) -> int:
        """Join results produced across all shards (join kinds)."""
        return sum(
            s.state.total_results
            for s in self._shards
            if isinstance(s.state, (JoinStepState, MultiJoinStepState))
        )

    def per_query_results(self) -> dict[frozenset, int]:
        """Results attributed per query pair, summed over shards
        (multi-join kind only)."""
        out: dict[frozenset, int] = {}
        for s in self._shards:
            if isinstance(s.state, MultiJoinStepState):
                for query, count in s.state.per_query.items():
                    out[query] = out.get(query, 0) + count
        return out

    @property
    def hits(self) -> int:
        """Cache hits across all shards (cache kind)."""
        return sum(
            s.state.hits
            for s in self._shards
            if isinstance(s.state, CacheStepState)
        )

    @property
    def misses(self) -> int:
        """Cache misses across all shards (cache kind)."""
        return sum(
            s.state.misses
            for s in self._shards
            if isinstance(s.state, CacheStepState)
        )

    def occupancy(self) -> int:
        """Tuples currently cached across all shards."""
        return sum(s.occupancy for s in self._shards)

    def cached_tuples(self) -> list[StreamTuple]:
        """All cached tuples, shard by shard in index order."""
        out: list[StreamTuple] = []
        for s in self._shards:
            out.extend(s.state.cache.tuples())
        return out

    def stats(self) -> dict:
        """Plain-dict operational summary for logs, CLIs, and benches."""
        per_shard = [
            {
                "shard": s.index,
                "events_applied": s.events_applied,
                "occupancy": s.occupancy,
                "max_queue_depth": s.max_queue_depth,
                "backpressure_waits": s.backpressure_waits,
            }
            for s in self._shards
        ]
        stats = {
            "kind": self._spec.kind,
            "n_shards": self.n_shards,
            "ingested_arrivals": self.ingested_arrivals,
            "backpressure_waits": self.backpressure_waits,
            "backpressure_wait_seconds": self.backpressure_wait_seconds,
            "uptime_seconds": self.uptime_seconds,
            "occupancy": self.occupancy(),
            "max_queue_depth": max(
                (s.max_queue_depth for s in self._shards), default=0
            ),
            "shards": per_shard,
        }
        if self._spec.kind in ("join", "multi_join"):
            stats["total_results"] = self.total_results
        else:
            stats["hits"] = self.hits
            stats["misses"] = self.misses
        return stats

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn one worker task per shard; idempotent calls are errors."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self._started_at = perf_counter()
        for shard in self._shards:
            self._spawn_worker(shard)
        if self._recorder.enabled:
            self._recorder.count("serve.started")

    def _spawn_worker(self, shard: Shard) -> None:
        """Create the consumer task that applies events to one shard."""
        shard.worker = asyncio.create_task(
            self._worker(shard), name=f"repro-serve-shard-{shard.index}"
        )

    async def _worker(self, shard: Shard) -> None:
        """Consume the shard queue, applying one step per event.

        Per event the worker times the tail of the request path: the
        ``queue_wait`` span (enqueue timestamp → dequeue), the
        ``decide`` span (the pure step-function application), and the
        ``emit`` span (dequeue-side telemetry).  All span work is
        guarded on the shard tracker's ``active`` flag so a disabled
        run reads no clocks at all.
        """
        kind = self._spec.kind
        delay = self._step_delay
        recorder = shard.state.recorder
        spans = shard.spans
        while True:
            event = await shard.queue.get()
            try:
                if event is _STOP:
                    return
                spans_on = spans.active
                if spans_on:
                    t0 = perf_counter()
                    enq_ts = event[-1]
                    if enq_ts:
                        spans.record(
                            "queue_wait", event[0], (t0 - enq_ts) * 1000.0
                        )
                    t0 = perf_counter()
                if kind == "join":
                    t, r_val, s_val = event[0], event[1], event[2]
                    assert isinstance(shard.state, JoinStepState)
                    join_step(shard.state, t, r_val, s_val)
                elif kind == "multi_join":
                    t, arrivals = event[0], event[1]
                    assert isinstance(shard.state, MultiJoinStepState)
                    multi_join_step(shard.state, t, arrivals)
                else:
                    t, value = event[0], event[1]
                    assert isinstance(shard.state, CacheStepState)
                    cache_step(shard.state, t, value)
                shard.events_applied += 1
                if spans_on:
                    t1 = perf_counter()
                    spans.record("decide", t, (t1 - t0) * 1000.0)
                # Dequeue-side depth sample: without it the series only
                # ever sees enqueue-time depths, so drain and quiesce
                # phases (consumer catching up, producers idle) are
                # invisible.
                if recorder.enabled:
                    recorder.series(
                        "serve.queue_depth", t, shard.queue.qsize()
                    )
                if spans_on:
                    spans.record("emit", t, (perf_counter() - t1) * 1000.0)
                if delay:
                    await asyncio.sleep(delay)
            finally:
                shard.queue.task_done()

    def _raise_if_worker_failed(self, shard: Shard) -> None:
        """Surface a crashed worker instead of deadlocking producers."""
        worker = shard.worker
        if worker is not None and worker.done() and not worker.cancelled():
            exc = worker.exception()
            if exc is not None:
                raise RuntimeError(
                    f"shard {shard.index} worker failed"
                ) from exc

    def _check_accepting(self) -> None:
        """Reject submissions outside the started-and-not-stopping window."""
        if not self._started:
            raise ServerClosed("server not started; call start() first")
        if self._stopping or self._stopped:
            raise ServerClosed("server is stopping; no new events accepted")

    async def _enqueue(self, shard: Shard, event: tuple) -> None:
        """Bounded put with backpressure accounting and depth telemetry.

        The enqueue timestamp is appended to the event (0.0 when spans
        are off), so the shard worker can measure the ``queue_wait``
        span; when the queue is full the blocked time is accumulated
        into the backpressure duty-cycle accounting and emitted as the
        ``serve.backpressure.wait_ms`` series.
        """
        self._raise_if_worker_failed(shard)
        queue = shard.queue
        rec_on = self._recorder.enabled
        spans_on = self._spans.active
        if queue.full():
            shard.backpressure_waits += 1
            self.backpressure_waits += 1
            if rec_on:
                self._recorder.count("serve.backpressure.engaged")
            wait_start = perf_counter()
            await queue.put(event + (wait_start if spans_on else 0.0,))
            waited = perf_counter() - wait_start
            shard.backpressure_wait_seconds += waited
            self.backpressure_wait_seconds += waited
            if rec_on:
                self._recorder.series(
                    "serve.backpressure.wait_ms", event[0], waited * 1000.0
                )
        else:
            await queue.put(
                event + ((perf_counter() if spans_on else 0.0),)
            )
        depth = queue.qsize()
        if depth > shard.max_queue_depth:
            shard.max_queue_depth = depth
        if rec_on:
            self._recorder.count("serve.ingested")
            self._recorder.series("serve.queue_depth", event[0], depth)

    # ------------------------------------------------------------------
    # Producers
    # ------------------------------------------------------------------
    async def submit(self, step: int, r_value: Value, s_value: Value) -> None:
        """Push one join tick: the step's R and S arrivals (``None`` = "−").

        With one shard the tick is delivered whole — even a double-"−"
        tick — so the shard observes exactly the simulator's input.
        With many shards arrivals route by join value; a tick whose R
        and S land on different shards is split into per-side events
        (the absent side delivered as "−"), and "−" arrivals are not
        delivered at all (they carry no key and join nothing).
        """
        self._check_accepting()
        if self._spec.kind != "join":
            raise ValueError(
                "submit() is for join servers; use submit_reference() "
                "or submit_multi()"
            )
        with self._spans.span("submit", step):
            self.ingested_arrivals += (r_value is not None) + (
                s_value is not None
            )
            if self._router.n_shards == 1:
                await self._enqueue(self._shards[0], (step, r_value, s_value))
                return
            events: dict[int, list[Value]] = {}
            with self._spans.span("route", step):
                if r_value is not None:
                    events.setdefault(
                        self._router.shard_for(r_value), [None, None]
                    )[0] = r_value
                if s_value is not None:
                    events.setdefault(
                        self._router.shard_for(s_value), [None, None]
                    )[1] = s_value
            if not events:
                if self._recorder.enabled:
                    self._recorder.count("serve.null_ticks")
                return
            for index in sorted(events):
                r_val, s_val = events[index]
                await self._enqueue(self._shards[index], (step, r_val, s_val))

    async def submit_reference(self, step: int, value: Value) -> None:
        """Push one caching-problem reference (``None`` = skipped "−")."""
        self._check_accepting()
        if self._spec.kind != "cache":
            raise ValueError("submit_reference() is for cache servers; use submit()")
        with self._spans.span("submit", step):
            if value is not None:
                self.ingested_arrivals += 1
            if self._router.n_shards == 1:
                await self._enqueue(self._shards[0], (step, value))
                return
            if value is None:
                if self._recorder.enabled:
                    self._recorder.count("serve.null_ticks")
                return
            with self._spans.span("route", step):
                shard = self._shards[self._router.shard_for(value)]
            await self._enqueue(shard, (step, value))

    async def submit_multi(self, step: int, arrivals: Mapping[str, Value]) -> None:
        """Push one multi-join tick: arrivals keyed by stream name.

        Streams absent from ``arrivals`` are treated as "−" (``None``).
        With one shard the tick is delivered whole, normalized over the
        server's stream set, so the shard observes exactly the scalar
        simulator's input.  With many shards each non-"−" arrival routes
        by its join value — every query edge probes the same attribute,
        so all of a value's matches stay intra-shard — and arrivals
        landing on the same shard share one event; an all-"−" tick is
        not delivered at all (``serve.null_ticks``).
        """
        self._check_accepting()
        if self._spec.kind != "multi_join":
            raise ValueError("submit_multi() is for multi-join servers")
        unknown = set(arrivals) - set(self._names)
        if unknown:
            raise ValueError(f"arrivals for unknown streams {sorted(unknown)}")
        with self._spans.span("submit", step):
            self.ingested_arrivals += sum(
                v is not None for v in arrivals.values()
            )
            if self._router.n_shards == 1:
                tick = {name: arrivals.get(name) for name in self._names}
                await self._enqueue(self._shards[0], (step, tick))
                return
            events: dict[int, dict[str, Value]] = {}
            with self._spans.span("route", step):
                for name in self._names:
                    value = arrivals.get(name)
                    if value is None:
                        continue
                    index = self._router.shard_for(value)
                    events.setdefault(
                        index, {n: None for n in self._names}
                    )[name] = value
            if not events:
                if self._recorder.enabled:
                    self._recorder.count("serve.null_ticks")
                return
            for index in sorted(events):
                await self._enqueue(
                    self._shards[index], (step, events[index])
                )

    # ------------------------------------------------------------------
    # Drain / stop
    # ------------------------------------------------------------------
    async def _await_or_worker_death(
        self, shard: Shard, awaitable: "asyncio.Future"
    ) -> None:
        """Wait for ``awaitable``, bailing out if the shard worker dies."""
        pending_task = asyncio.ensure_future(awaitable)
        worker = shard.worker
        assert worker is not None
        done, _ = await asyncio.wait(
            {pending_task, worker}, return_when=asyncio.FIRST_COMPLETED
        )
        if pending_task not in done:
            pending_task.cancel()
            self._raise_if_worker_failed(shard)
            raise RuntimeError(
                f"shard {shard.index} worker exited while waiting"
            )

    async def drain(self) -> None:
        """Block until every queued event has been applied.

        Deadlock-safe: if a shard worker crashed, the failure is raised
        here instead of waiting forever on its queue.
        """
        if not self._started:
            return
        for shard in self._shards:
            self._raise_if_worker_failed(shard)
            await self._await_or_worker_death(shard, shard.queue.join())

    async def stop(self) -> None:
        """Graceful shutdown: drain queues, stop workers, merge metrics.

        Sentinels go behind any queued work (FIFO), so every accepted
        event is applied before its worker exits.  In sharded mode each
        shard's forked recorder snapshot is merged into the caller's
        recorder (and kept on the shard for per-shard inspection).
        """
        if not self._started or self._stopped:
            self._stopped = True
            self._stopping = True
            await self.stop_metrics()
            return
        self._stopping = True
        failures: list[BaseException] = []
        for shard in self._shards:
            worker = shard.worker
            assert worker is not None
            if not worker.done():
                try:
                    await self._await_or_worker_death(
                        shard, shard.queue.put(_STOP)
                    )
                except RuntimeError:
                    pass  # worker died; collected from the task below
            try:
                await worker
            except asyncio.CancelledError:
                pass
            except BaseException as exc:  # resurfaced after cleanup below
                failures.append(exc)
        self._stopped = True
        if self._stopped_at is None:
            self._stopped_at = perf_counter()
        if self._recorder.enabled:
            self._recorder.series(
                "serve.uptime_ms", 0, self.uptime_seconds * 1000.0
            )
        self._fold_shard_hists()
        self._merge_shard_snapshots()
        if self._recorder.enabled:
            self._recorder.count("serve.stopped")
        await self.stop_metrics()
        if failures:
            raise failures[0]

    async def abort(self) -> None:
        """Hard shutdown: cancel workers without draining queues."""
        self._stopping = True
        for shard in self._shards:
            if shard.worker is not None:
                shard.worker.cancel()
        await asyncio.gather(
            *(s.worker for s in self._shards if s.worker is not None),
            return_exceptions=True,
        )
        self._stopped = True
        if self._stopped_at is None:
            self._stopped_at = perf_counter()
        self._fold_shard_hists()
        self._merge_shard_snapshots()
        await self.stop_metrics()

    def _merge_shard_snapshots(self) -> None:
        """Fold forked per-shard recorders back into the caller's sink."""
        if self.n_shards == 1 or not self._recorder.enabled:
            return
        for shard in self._shards:
            if shard.snapshot is None:
                shard.snapshot = shard.state.recorder.snapshot()
                self._recorder.merge(shard.snapshot)

    def _fold_shard_hists(self, shards: Optional[list[Shard]] = None) -> None:
        """Fold retiring shards' span histograms into the server set.

        Same-layout histogram merges add bucket counts exactly, so no
        observation is lost at stop, abort, or reshard; each shard is
        folded at most once (``hists_folded``).
        """
        for shard in self._shards if shards is None else shards:
            if not shard.hists_folded:
                if shard.hists:
                    self._hists.merge(shard.hists.state())
                shard.hists_folded = True

    # ------------------------------------------------------------------
    # Live metrics endpoint
    # ------------------------------------------------------------------
    def enable_spans(self) -> None:
        """Turn request-path span timing on for the server and shards.

        Called automatically by :meth:`start_metrics` so a live scrape
        has latency histograms to serve even under a
        :class:`~repro.obs.NullRecorder`; harmless to call directly.
        """
        self._spans.active = True
        for shard in self._shards:
            shard.spans.active = True

    async def start_metrics(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> "MetricsEndpoint":
        """Start the opt-in HTTP scrape endpoint (``/metrics``, ``/health``).

        Binding ``port=0`` picks a free ephemeral port (see
        :attr:`~repro.serve.metrics.MetricsEndpoint.port`).  Span timing
        is enabled as a side effect so the latency histograms fill.
        """
        if self._metrics is not None:
            raise RuntimeError("metrics endpoint already started")
        from .metrics import MetricsEndpoint

        self.enable_spans()
        endpoint = MetricsEndpoint(self, host=host, port=port)
        await endpoint.start()
        self._metrics = endpoint
        return endpoint

    async def stop_metrics(self) -> None:
        """Close the scrape endpoint if one is running (idempotent)."""
        if self._metrics is not None:
            endpoint, self._metrics = self._metrics, None
            await endpoint.stop()

    # ------------------------------------------------------------------
    # Resharding
    # ------------------------------------------------------------------
    async def reshard(self, new_n_shards: int) -> None:
        """Repartition the cached tuples onto ``new_n_shards`` shards.

        Requires quiescence: queues are drained first, then the old
        workers are retired and fresh shards take over.  The multiset of
        cached tuples is preserved exactly
        (:func:`~repro.serve.shard.reshard`); new uid strides start past
        every uid minted so far, so no collision is possible.  Policies
        are rebuilt per shard and re-admitted their shard's tuples in
        uid order (recency/frequency state is reconstructed from the
        admissions; model-aware history restarts from later arrivals).
        """
        if new_n_shards < 1:
            raise ValueError("new_n_shards must be >= 1")
        if self._stopping or self._stopped:
            raise ServerClosed("cannot reshard a stopping server")
        if self._started:
            await self.drain()
            # Retire the old workers (queues are empty, so the sentinel
            # is consumed immediately).
            for shard in self._shards:
                await self._await_or_worker_death(
                    shard, shard.queue.put(_STOP)
                )
            await asyncio.gather(
                *(s.worker for s in self._shards if s.worker is not None)
            )
        old_shards = self._shards
        self._merge_shard_snapshots()
        # Retiring shards' span histograms fold into the server-level
        # set (exact bucket addition), so latency observed before the
        # reshard keeps counting toward the merged percentiles.
        self._fold_shard_hists(old_shards)
        uid_base = max(s.state.factory.next_uid for s in old_shards)
        new_router = ShardRouter(new_n_shards)
        assignments = reshard_tuples(
            [s.state.cache.tuples() for s in old_shards], new_router
        )
        # Sketch-backed policies (count-min / TinyLFU frequency state,
        # admission doorkeepers + cutoff EMAs) cannot be reconstructed
        # from re-admissions alone, so carry the retiring shards' sketch
        # state over and fold it into every successor.  Each new shard
        # receives the union of all old shards; for its own keys the
        # counts are preserved, for foreign keys the only cost is
        # count-min's one-sided overestimate.
        donor_states = [
            state
            for state in (s.state.policy.sketch_state() for s in old_shards)
            if state
        ]
        self._router = new_router
        self._shards = []
        for index, tuples in enumerate(assignments):
            shard = self._make_shard(
                index, new_n_shards, uid_start=uid_base + index
            )
            for state in donor_states:
                shard.state.policy.merge_sketch_state(state)
            for tup in sorted(tuples, key=lambda x: x.uid):
                shard.state.cache.add(tup)
                shard.state.policy.on_admit(tup, tup.arrival)
            self._shards.append(shard)
        if self._started:
            for shard in self._shards:
                self._spawn_worker(shard)
        if self._recorder.enabled:
            self._recorder.count("serve.reshard")
