"""Push-driven asyncio join/cache service over the shared step functions.

:class:`StreamServer` is the serving tier promised by the roadmap: the
same per-step transition the simulators drive with a ``for`` loop
(:mod:`repro.sim.step`), driven instead by an asyncio event loop fed by
concurrent producers.  Because both drivers call the *same* pure
transition over the *same* state objects, a single-shard server replay
of a seeded stream is decision-identical to the scalar simulator — the
parity suite (``tests/test_serve_parity.py``,
``tests/test_serve_multi.py``) pins kept/victim uids, hit counts, and
:mod:`repro.obs` counters byte for byte.  All three problem kinds are
served: two-stream joins, the caching problem, and the Appendix-C
multi-join topologies (``kind="multi_join"``, fed via
:meth:`StreamServer.submit_multi`).

Architecture
------------
* **Shards.**  The join-attribute space is partitioned across
  ``n_shards`` independent caches (:class:`~repro.serve.shard.ShardRouter`),
  each with its own policy instance, :class:`~repro.policies.base.PolicyContext`,
  and bounded event queue.  Routing by join value means all matches for
  a key are intra-shard — in the multi-join case every query edge probes
  by the same join attribute, so one value-keyed router covers all
  queries and no cross-shard probe exists.  Each shard's capacity is
  ``spec.cache_size`` (total capacity scales with shards).
* **Backpressure.**  Each shard queue is a bounded :class:`asyncio.Queue`;
  when a queue is full, ``submit`` awaits — producers slow to the rate
  of the slowest shard instead of growing memory without bound.
  Engagements are counted (``serve.backpressure.engaged``) and queue
  depth is reported through the recorder's ``series()`` telemetry.
* **Instrumentation.**  With one shard the caller's recorder is used
  directly (exact simulator parity, trace events included).  With many
  shards each shard records into a :meth:`~repro.obs.recorder.Recorder.fork`
  of the caller's recorder and the snapshots are merged back additively
  at :meth:`StreamServer.stop` — the same pattern the parallel engine
  uses for worker processes.
* **Uids.**  Shard ``i`` of ``n`` mints tuple uids ``i, i + n,
  i + 2n, ...`` (a strided :class:`~repro.core.tuples.TupleFactory`),
  so uids are globally unique and deterministic per shard regardless of
  event-loop interleaving — which is what makes live resharding
  (:meth:`StreamServer.reshard`) collision-free.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Mapping, Optional, Union

from ..core.tuples import StreamTuple, TupleFactory
from ..obs.recorder import NULL_RECORDER, Recorder
from ..policies.base import ReplacementPolicy
from ..sim.engine import ExperimentSpec
from ..sim.step import (
    CacheStepState,
    JoinStepState,
    MultiJoinStepState,
    build_multi_join_state,
    cache_step,
    join_step,
    make_cache_state,
    make_join_state,
    multi_join_step,
    multi_partner_names,
)
from ..streams.base import Value
from .shard import ShardRouter, reshard as reshard_tuples

__all__ = ["Shard", "StreamServer", "ServerClosed"]

#: Queue sentinel telling a shard worker to exit after draining.
_STOP = object()

#: Default bound on each shard's event queue.
DEFAULT_QUEUE_MAXSIZE = 1024


class ServerClosed(RuntimeError):
    """Raised when submitting to a server that is not accepting events."""


class Shard:
    """One shard: its own cache/policy state plus a bounded event queue.

    Created and owned by :class:`StreamServer`; exposed read-only for
    inspection (tests, stats).  ``state`` is a
    :class:`~repro.sim.step.JoinStepState`,
    :class:`~repro.sim.step.CacheStepState`, or
    :class:`~repro.sim.step.MultiJoinStepState`.
    """

    def __init__(
        self,
        index: int,
        state: Union[JoinStepState, CacheStepState, MultiJoinStepState],
        queue_maxsize: int,
    ):
        """Bind the shard's index, step state, and bounded queue."""
        self.index = index
        self.state = state
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_maxsize)
        self.worker: Optional[asyncio.Task] = None
        #: Events this shard's worker has applied.
        self.events_applied = 0
        #: Times a producer found this shard's queue full and had to wait.
        self.backpressure_waits = 0
        #: High-water mark of the queue depth observed at enqueue time.
        self.max_queue_depth = 0
        #: Recorder snapshot captured at server stop (sharded mode only).
        self.snapshot: Optional[dict] = None

    @property
    def occupancy(self) -> int:
        """Tuples currently cached by this shard."""
        return len(self.state.cache)


class StreamServer:
    """Asyncio join/cache service sharing the simulators' transition.

    Parameters
    ----------
    spec:
        The problem description (``kind`` may be ``"join"``, ``"cache"``,
        or ``"multi_join"`` — the Appendix-C generalization is served
        through :meth:`submit_multi`).  ``cache_size`` is the
        *per-shard* capacity.
    policy_factory:
        Builds a fresh replacement policy per shard, exactly like the
        per-trial factories of :func:`~repro.sim.runner.run_experiment`.
    n_shards:
        Number of independent cache shards (default 1: simulator-parity
        mode, where the caller's recorder is shared verbatim).
    queue_maxsize:
        Bound on each shard's event queue; full queues apply
        backpressure to ``submit`` callers.
    recorder:
        Observability sink (:mod:`repro.obs`).  Counters/series:
        ``serve.ingested``, ``serve.backpressure.engaged``,
        ``serve.queue_depth`` plus everything the step functions emit.
    step_delay:
        Artificial seconds slept per applied event — a slow-consumer
        knob for backpressure tests and demos, 0.0 in production.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        policy_factory: Callable[[], ReplacementPolicy],
        *,
        n_shards: int = 1,
        queue_maxsize: int = DEFAULT_QUEUE_MAXSIZE,
        recorder: Recorder = NULL_RECORDER,
        step_delay: float = 0.0,
    ):
        """Validate the spec and build the (not yet started) shards."""
        if spec.kind not in ("join", "cache", "multi_join"):
            raise ValueError(
                "StreamServer serves 'join', 'cache', or 'multi_join' "
                f"specs, not {spec.kind!r}"
            )
        if spec.kind == "multi_join":
            partner_names = multi_partner_names(spec.queries)
            if spec.models:
                names = list(spec.models)
            else:
                names = []
                for a, b in spec.queries:
                    for name in (a, b):
                        if name not in names:
                            names.append(name)
            missing = set(partner_names) - set(names)
            if missing:
                raise ValueError(f"queries reference unknown streams {missing}")
            self._names: tuple[str, ...] = tuple(names)
        else:
            self._names = ()
        if queue_maxsize < 1:
            raise ValueError("queue_maxsize must be >= 1")
        if step_delay < 0:
            raise ValueError("step_delay must be nonnegative")
        self._spec = spec
        self._policy_factory = policy_factory
        self._recorder = recorder
        self._queue_maxsize = queue_maxsize
        self._step_delay = step_delay
        self._router = ShardRouter(n_shards)
        self._started = False
        self._stopping = False
        self._stopped = False
        #: Arrivals (non-"−" values) accepted by ``submit`` so far.
        self.ingested_arrivals = 0
        #: Total times any producer hit a full queue.
        self.backpressure_waits = 0
        self._shards = [
            self._make_shard(i, n_shards, uid_start=i)
            for i in range(n_shards)
        ]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _make_shard(self, index: int, n_shards: int, uid_start: int) -> Shard:
        """Build one shard with its own policy, state, and recorder."""
        # Single shard shares the caller's recorder verbatim so traces,
        # counters, and series match the scalar simulator exactly; many
        # shards fork and merge at stop (the parallel-engine pattern).
        if n_shards == 1:
            shard_recorder = self._recorder
        else:
            shard_recorder = self._recorder.fork()
        spec = self._spec
        state: Union[JoinStepState, CacheStepState, MultiJoinStepState]
        if spec.kind == "join":
            state = make_join_state(
                spec.cache_size,
                self._policy_factory(),
                window=spec.window,
                band=spec.band,
                r_model=spec.r_model,
                s_model=spec.s_model,
                window_oracle=spec.window_oracle,
                recorder=shard_recorder,
            )
        elif spec.kind == "multi_join":
            state = build_multi_join_state(
                spec.cache_size,
                self._policy_factory(),
                spec.queries,
                list(self._names),
                models=spec.models,
                recorder=shard_recorder,
            )
        else:
            state = make_cache_state(
                spec.cache_size,
                self._policy_factory(),
                reference_model=spec.r_model,
                recorder=shard_recorder,
            )
        state.factory = TupleFactory(start=uid_start, step=n_shards)
        return Shard(index, state, self._queue_maxsize)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def spec(self) -> ExperimentSpec:
        """The problem description this server was built for."""
        return self._spec

    @property
    def names(self) -> tuple[str, ...]:
        """Stream names served, in arrival order (multi-join kind;
        empty for join/cache)."""
        return self._names

    @property
    def n_shards(self) -> int:
        """Current number of shards."""
        return self._router.n_shards

    @property
    def shards(self) -> tuple[Shard, ...]:
        """The live shard objects, in index order (read-only view)."""
        return tuple(self._shards)

    @property
    def recorder(self) -> Recorder:
        """The server-level observability sink."""
        return self._recorder

    @property
    def total_results(self) -> int:
        """Join results produced across all shards (join kinds)."""
        return sum(
            s.state.total_results
            for s in self._shards
            if isinstance(s.state, (JoinStepState, MultiJoinStepState))
        )

    def per_query_results(self) -> dict[frozenset, int]:
        """Results attributed per query pair, summed over shards
        (multi-join kind only)."""
        out: dict[frozenset, int] = {}
        for s in self._shards:
            if isinstance(s.state, MultiJoinStepState):
                for query, count in s.state.per_query.items():
                    out[query] = out.get(query, 0) + count
        return out

    @property
    def hits(self) -> int:
        """Cache hits across all shards (cache kind)."""
        return sum(
            s.state.hits
            for s in self._shards
            if isinstance(s.state, CacheStepState)
        )

    @property
    def misses(self) -> int:
        """Cache misses across all shards (cache kind)."""
        return sum(
            s.state.misses
            for s in self._shards
            if isinstance(s.state, CacheStepState)
        )

    def occupancy(self) -> int:
        """Tuples currently cached across all shards."""
        return sum(s.occupancy for s in self._shards)

    def cached_tuples(self) -> list[StreamTuple]:
        """All cached tuples, shard by shard in index order."""
        out: list[StreamTuple] = []
        for s in self._shards:
            out.extend(s.state.cache.tuples())
        return out

    def stats(self) -> dict:
        """Plain-dict operational summary for logs, CLIs, and benches."""
        per_shard = [
            {
                "shard": s.index,
                "events_applied": s.events_applied,
                "occupancy": s.occupancy,
                "max_queue_depth": s.max_queue_depth,
                "backpressure_waits": s.backpressure_waits,
            }
            for s in self._shards
        ]
        stats = {
            "kind": self._spec.kind,
            "n_shards": self.n_shards,
            "ingested_arrivals": self.ingested_arrivals,
            "backpressure_waits": self.backpressure_waits,
            "occupancy": self.occupancy(),
            "max_queue_depth": max(
                (s.max_queue_depth for s in self._shards), default=0
            ),
            "shards": per_shard,
        }
        if self._spec.kind in ("join", "multi_join"):
            stats["total_results"] = self.total_results
        else:
            stats["hits"] = self.hits
            stats["misses"] = self.misses
        return stats

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn one worker task per shard; idempotent calls are errors."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        for shard in self._shards:
            self._spawn_worker(shard)
        if self._recorder.enabled:
            self._recorder.count("serve.started")

    def _spawn_worker(self, shard: Shard) -> None:
        """Create the consumer task that applies events to one shard."""
        shard.worker = asyncio.create_task(
            self._worker(shard), name=f"repro-serve-shard-{shard.index}"
        )

    async def _worker(self, shard: Shard) -> None:
        """Consume the shard queue, applying one step per event."""
        kind = self._spec.kind
        delay = self._step_delay
        while True:
            event = await shard.queue.get()
            try:
                if event is _STOP:
                    return
                if kind == "join":
                    t, r_val, s_val = event
                    assert isinstance(shard.state, JoinStepState)
                    join_step(shard.state, t, r_val, s_val)
                elif kind == "multi_join":
                    t, arrivals = event
                    assert isinstance(shard.state, MultiJoinStepState)
                    multi_join_step(shard.state, t, arrivals)
                else:
                    t, value = event
                    assert isinstance(shard.state, CacheStepState)
                    cache_step(shard.state, t, value)
                shard.events_applied += 1
                if delay:
                    await asyncio.sleep(delay)
            finally:
                shard.queue.task_done()

    def _raise_if_worker_failed(self, shard: Shard) -> None:
        """Surface a crashed worker instead of deadlocking producers."""
        worker = shard.worker
        if worker is not None and worker.done() and not worker.cancelled():
            exc = worker.exception()
            if exc is not None:
                raise RuntimeError(
                    f"shard {shard.index} worker failed"
                ) from exc

    def _check_accepting(self) -> None:
        """Reject submissions outside the started-and-not-stopping window."""
        if not self._started:
            raise ServerClosed("server not started; call start() first")
        if self._stopping or self._stopped:
            raise ServerClosed("server is stopping; no new events accepted")

    async def _enqueue(self, shard: Shard, event: tuple) -> None:
        """Bounded put with backpressure accounting and depth telemetry."""
        self._raise_if_worker_failed(shard)
        queue = shard.queue
        if queue.full():
            shard.backpressure_waits += 1
            self.backpressure_waits += 1
            if self._recorder.enabled:
                self._recorder.count("serve.backpressure.engaged")
        await queue.put(event)
        depth = queue.qsize()
        if depth > shard.max_queue_depth:
            shard.max_queue_depth = depth
        if self._recorder.enabled:
            self._recorder.count("serve.ingested")
            self._recorder.series("serve.queue_depth", event[0], depth)

    # ------------------------------------------------------------------
    # Producers
    # ------------------------------------------------------------------
    async def submit(self, step: int, r_value: Value, s_value: Value) -> None:
        """Push one join tick: the step's R and S arrivals (``None`` = "−").

        With one shard the tick is delivered whole — even a double-"−"
        tick — so the shard observes exactly the simulator's input.
        With many shards arrivals route by join value; a tick whose R
        and S land on different shards is split into per-side events
        (the absent side delivered as "−"), and "−" arrivals are not
        delivered at all (they carry no key and join nothing).
        """
        self._check_accepting()
        if self._spec.kind != "join":
            raise ValueError(
                "submit() is for join servers; use submit_reference() "
                "or submit_multi()"
            )
        self.ingested_arrivals += (r_value is not None) + (s_value is not None)
        if self._router.n_shards == 1:
            await self._enqueue(self._shards[0], (step, r_value, s_value))
            return
        events: dict[int, list[Value]] = {}
        if r_value is not None:
            events.setdefault(self._router.shard_for(r_value), [None, None])[
                0
            ] = r_value
        if s_value is not None:
            events.setdefault(self._router.shard_for(s_value), [None, None])[
                1
            ] = s_value
        if not events:
            if self._recorder.enabled:
                self._recorder.count("serve.null_ticks")
            return
        for index in sorted(events):
            r_val, s_val = events[index]
            await self._enqueue(self._shards[index], (step, r_val, s_val))

    async def submit_reference(self, step: int, value: Value) -> None:
        """Push one caching-problem reference (``None`` = skipped "−")."""
        self._check_accepting()
        if self._spec.kind != "cache":
            raise ValueError("submit_reference() is for cache servers; use submit()")
        if value is not None:
            self.ingested_arrivals += 1
        if self._router.n_shards == 1:
            await self._enqueue(self._shards[0], (step, value))
            return
        if value is None:
            if self._recorder.enabled:
                self._recorder.count("serve.null_ticks")
            return
        shard = self._shards[self._router.shard_for(value)]
        await self._enqueue(shard, (step, value))

    async def submit_multi(self, step: int, arrivals: Mapping[str, Value]) -> None:
        """Push one multi-join tick: arrivals keyed by stream name.

        Streams absent from ``arrivals`` are treated as "−" (``None``).
        With one shard the tick is delivered whole, normalized over the
        server's stream set, so the shard observes exactly the scalar
        simulator's input.  With many shards each non-"−" arrival routes
        by its join value — every query edge probes the same attribute,
        so all of a value's matches stay intra-shard — and arrivals
        landing on the same shard share one event; an all-"−" tick is
        not delivered at all (``serve.null_ticks``).
        """
        self._check_accepting()
        if self._spec.kind != "multi_join":
            raise ValueError("submit_multi() is for multi-join servers")
        unknown = set(arrivals) - set(self._names)
        if unknown:
            raise ValueError(f"arrivals for unknown streams {sorted(unknown)}")
        self.ingested_arrivals += sum(
            v is not None for v in arrivals.values()
        )
        if self._router.n_shards == 1:
            tick = {name: arrivals.get(name) for name in self._names}
            await self._enqueue(self._shards[0], (step, tick))
            return
        events: dict[int, dict[str, Value]] = {}
        for name in self._names:
            value = arrivals.get(name)
            if value is None:
                continue
            index = self._router.shard_for(value)
            events.setdefault(
                index, {n: None for n in self._names}
            )[name] = value
        if not events:
            if self._recorder.enabled:
                self._recorder.count("serve.null_ticks")
            return
        for index in sorted(events):
            await self._enqueue(self._shards[index], (step, events[index]))

    # ------------------------------------------------------------------
    # Drain / stop
    # ------------------------------------------------------------------
    async def _await_or_worker_death(
        self, shard: Shard, awaitable: "asyncio.Future"
    ) -> None:
        """Wait for ``awaitable``, bailing out if the shard worker dies."""
        pending_task = asyncio.ensure_future(awaitable)
        worker = shard.worker
        assert worker is not None
        done, _ = await asyncio.wait(
            {pending_task, worker}, return_when=asyncio.FIRST_COMPLETED
        )
        if pending_task not in done:
            pending_task.cancel()
            self._raise_if_worker_failed(shard)
            raise RuntimeError(
                f"shard {shard.index} worker exited while waiting"
            )

    async def drain(self) -> None:
        """Block until every queued event has been applied.

        Deadlock-safe: if a shard worker crashed, the failure is raised
        here instead of waiting forever on its queue.
        """
        if not self._started:
            return
        for shard in self._shards:
            self._raise_if_worker_failed(shard)
            await self._await_or_worker_death(shard, shard.queue.join())

    async def stop(self) -> None:
        """Graceful shutdown: drain queues, stop workers, merge metrics.

        Sentinels go behind any queued work (FIFO), so every accepted
        event is applied before its worker exits.  In sharded mode each
        shard's forked recorder snapshot is merged into the caller's
        recorder (and kept on the shard for per-shard inspection).
        """
        if not self._started or self._stopped:
            self._stopped = True
            self._stopping = True
            return
        self._stopping = True
        failures: list[BaseException] = []
        for shard in self._shards:
            worker = shard.worker
            assert worker is not None
            if not worker.done():
                try:
                    await self._await_or_worker_death(
                        shard, shard.queue.put(_STOP)
                    )
                except RuntimeError:
                    pass  # worker died; collected from the task below
            try:
                await worker
            except asyncio.CancelledError:
                pass
            except BaseException as exc:  # resurfaced after cleanup below
                failures.append(exc)
        self._stopped = True
        self._merge_shard_snapshots()
        if self._recorder.enabled:
            self._recorder.count("serve.stopped")
        if failures:
            raise failures[0]

    async def abort(self) -> None:
        """Hard shutdown: cancel workers without draining queues."""
        self._stopping = True
        for shard in self._shards:
            if shard.worker is not None:
                shard.worker.cancel()
        await asyncio.gather(
            *(s.worker for s in self._shards if s.worker is not None),
            return_exceptions=True,
        )
        self._stopped = True
        self._merge_shard_snapshots()

    def _merge_shard_snapshots(self) -> None:
        """Fold forked per-shard recorders back into the caller's sink."""
        if self.n_shards == 1 or not self._recorder.enabled:
            return
        for shard in self._shards:
            if shard.snapshot is None:
                shard.snapshot = shard.state.recorder.snapshot()
                self._recorder.merge(shard.snapshot)

    # ------------------------------------------------------------------
    # Resharding
    # ------------------------------------------------------------------
    async def reshard(self, new_n_shards: int) -> None:
        """Repartition the cached tuples onto ``new_n_shards`` shards.

        Requires quiescence: queues are drained first, then the old
        workers are retired and fresh shards take over.  The multiset of
        cached tuples is preserved exactly
        (:func:`~repro.serve.shard.reshard`); new uid strides start past
        every uid minted so far, so no collision is possible.  Policies
        are rebuilt per shard and re-admitted their shard's tuples in
        uid order (recency/frequency state is reconstructed from the
        admissions; model-aware history restarts from later arrivals).
        """
        if new_n_shards < 1:
            raise ValueError("new_n_shards must be >= 1")
        if self._stopping or self._stopped:
            raise ServerClosed("cannot reshard a stopping server")
        if self._started:
            await self.drain()
            # Retire the old workers (queues are empty, so the sentinel
            # is consumed immediately).
            for shard in self._shards:
                await self._await_or_worker_death(
                    shard, shard.queue.put(_STOP)
                )
            await asyncio.gather(
                *(s.worker for s in self._shards if s.worker is not None)
            )
        old_shards = self._shards
        self._merge_shard_snapshots()
        uid_base = max(s.state.factory.next_uid for s in old_shards)
        new_router = ShardRouter(new_n_shards)
        assignments = reshard_tuples(
            [s.state.cache.tuples() for s in old_shards], new_router
        )
        # Sketch-backed policies (count-min / TinyLFU frequency state,
        # admission doorkeepers + cutoff EMAs) cannot be reconstructed
        # from re-admissions alone, so carry the retiring shards' sketch
        # state over and fold it into every successor.  Each new shard
        # receives the union of all old shards; for its own keys the
        # counts are preserved, for foreign keys the only cost is
        # count-min's one-sided overestimate.
        donor_states = [
            state
            for state in (s.state.policy.sketch_state() for s in old_shards)
            if state
        ]
        self._router = new_router
        self._shards = []
        for index, tuples in enumerate(assignments):
            shard = self._make_shard(
                index, new_n_shards, uid_start=uid_base + index
            )
            for state in donor_states:
                shard.state.policy.merge_sketch_state(state)
            for tup in sorted(tuples, key=lambda x: x.uid):
                shard.state.cache.add(tup)
                shard.state.policy.on_admit(tup, tup.arrival)
            self._shards.append(shard)
        if self._started:
            for shard in self._shards:
                self._spawn_worker(shard)
        if self._recorder.enabled:
            self._recorder.count("serve.reshard")
