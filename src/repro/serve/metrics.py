"""Live scrape surface for :class:`~repro.serve.server.StreamServer`.

An opt-in asyncio TCP endpoint (no framework, no dependencies — the
Prometheus text format and a JSON health document need nothing beyond
:func:`asyncio.start_server`) exposing the runtime signals the
observability tentpole promises:

* ``GET /metrics`` — Prometheus text format 0.0.4
  (:func:`repro.obs.promtext.render_prometheus`): every recorder
  counter and timer **exactly as snapshotted** (the endpoint test pins
  scrape == snapshot), per-shard operational gauges, and the span
  latency histograms as native Prometheus histogram families.
* ``GET /health`` — JSON with server status plus per-shard rows: queue
  saturation, backpressure duty cycle, worker liveness, occupancy, and
  p99 decide latency — the payload ``python -m repro.obs top`` renders.

Start it with :meth:`StreamServer.start_metrics` (which also flips span
timing on so the histograms fill even under a ``NullRecorder``); it is
closed automatically by ``stop()``/``abort()``.

The module-level builders (:func:`merged_snapshot`,
:func:`server_health`, :func:`metrics_text`) are pure functions of the
server, so tests and the offline ``--health-out`` snapshot path reuse
the exact rendering the live endpoint serves.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Optional

from ..obs.promtext import render_prometheus
from ..obs.recorder import CounterRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .server import StreamServer

__all__ = [
    "MetricsEndpoint",
    "merged_snapshot",
    "server_health",
    "metrics_text",
]

#: Response skeletons; HTTP/1.0 + ``Connection: close`` keeps the
#: handler one-shot (scrapers reconnect per poll, which is the norm).
_STATUS_LINES = {
    200: "HTTP/1.0 200 OK",
    404: "HTTP/1.0 404 Not Found",
    405: "HTTP/1.0 405 Method Not Allowed",
}

#: Content type Prometheus scrapers expect for the text exposition.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def merged_snapshot(server: "StreamServer") -> dict:
    """The server's recorder snapshot with live shard forks merged in.

    Single-shard servers share the caller's recorder verbatim, so its
    snapshot already holds everything.  Sharded servers fork per shard
    and merge only at stop — a *live* scrape therefore merges the
    running shards' fork snapshots on the fly (into a scratch
    :class:`~repro.obs.recorder.CounterRecorder`, never mutating the
    caller's sink).  Shards already folded at stop (``shard.snapshot``
    set) are skipped: their state lives in the server recorder.
    """
    base = CounterRecorder()
    snap = getattr(server.recorder, "snapshot", None)
    if callable(snap):
        base.merge(snap())
    if server.n_shards > 1:
        for shard in server.shards:
            if shard.snapshot is not None:
                continue
            shard_snap = getattr(shard.state.recorder, "snapshot", None)
            if callable(shard_snap):
                base.merge(shard_snap())
    return base.snapshot()


def server_health(server: "StreamServer") -> dict:
    """The ``/health`` document: server status plus per-shard rows."""
    shards = []
    all_alive = True
    for shard in server.shards:
        maxsize = shard.queue.maxsize
        depth = shard.queue.qsize()
        alive = shard.alive
        all_alive = all_alive and alive
        decide = shard.hists.get("serve.span.decide_ms")
        shards.append(
            {
                "shard": shard.index,
                "alive": alive,
                "queue_depth": depth,
                "queue_maxsize": maxsize,
                "queue_saturation": depth / maxsize if maxsize else 0.0,
                "events_applied": shard.events_applied,
                "occupancy": shard.occupancy,
                "max_queue_depth": shard.max_queue_depth,
                "backpressure_waits": shard.backpressure_waits,
                "backpressure_duty": (
                    shard.backpressure_wait_seconds / server.uptime_seconds
                    if server.uptime_seconds > 0
                    else 0.0
                ),
                "p99_decide_ms": (
                    decide.quantile(0.99)
                    if decide is not None and decide.count
                    else None
                ),
            }
        )
    if getattr(server, "_stopped", False):
        status = "stopped"
    elif not getattr(server, "_started", False):
        status = "idle"
    elif all_alive:
        status = "ok"
    else:
        status = "degraded"
    return {
        "status": status,
        "kind": server.spec.kind,
        "n_shards": server.n_shards,
        "uptime_seconds": server.uptime_seconds,
        "ingested_arrivals": server.ingested_arrivals,
        "backpressure_waits": server.backpressure_waits,
        "backpressure_wait_seconds": server.backpressure_wait_seconds,
        "backpressure_duty": server.backpressure_duty,
        "occupancy": server.occupancy(),
        "shards": shards,
        "latency": {
            name: hist.percentiles()
            for name, hist in sorted(server.latency_histograms().items())
        },
    }


def metrics_text(server: "StreamServer") -> str:
    """Render the full ``/metrics`` payload as Prometheus text."""
    snapshot = merged_snapshot(server)
    gauges: list = [
        ("uptime_seconds", {}, server.uptime_seconds),
        ("backpressure_duty", {}, server.backpressure_duty),
        ("n_shards", {}, float(server.n_shards)),
        ("ingested_arrivals", {}, float(server.ingested_arrivals)),
        ("occupancy", {}, float(server.occupancy())),
    ]
    for shard in server.shards:
        labels = {"shard": shard.index}
        maxsize = shard.queue.maxsize
        depth = shard.queue.qsize()
        gauges.extend(
            [
                ("shard_alive", labels, 1.0 if shard.alive else 0.0),
                ("shard_queue_depth", labels, float(depth)),
                (
                    "shard_queue_saturation",
                    labels,
                    depth / maxsize if maxsize else 0.0,
                ),
                ("shard_occupancy", labels, float(shard.occupancy)),
                (
                    "shard_events_applied",
                    labels,
                    float(shard.events_applied),
                ),
                (
                    "shard_backpressure_waits",
                    labels,
                    float(shard.backpressure_waits),
                ),
            ]
        )
    return render_prometheus(
        counters=snapshot.get("counters"),
        timers=snapshot.get("timers"),
        gauges=gauges,
        histograms=server.latency_histograms(),
    )


class MetricsEndpoint:
    """Minimal asyncio HTTP server for ``/metrics`` and ``/health``.

    One connection handles one request (``Connection: close``), which
    is how Prometheus-style pollers behave anyway and keeps the handler
    free of keep-alive state.  ``port=0`` binds an ephemeral port;
    read the bound one back from :attr:`port`.
    """

    def __init__(
        self, server: "StreamServer", host: str = "127.0.0.1", port: int = 0
    ):
        """Bind the target stream server and the listen address."""
        self._server = server
        self.host = host
        self._requested_port = port
        self._listener: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        """The actually bound TCP port (0 until :meth:`start`)."""
        if self._listener is None or not self._listener.sockets:
            return 0
        return self._listener.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        """Base URL of the running endpoint (host:port, no path)."""
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        """Start listening; idempotent calls are errors."""
        if self._listener is not None:
            raise RuntimeError("metrics endpoint already listening")
        self._listener = await asyncio.start_server(
            self._handle, host=self.host, port=self._requested_port
        )

    async def stop(self) -> None:
        """Close the listener (idempotent)."""
        listener, self._listener = self._listener, None
        if listener is not None:
            listener.close()
            await listener.wait_closed()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one HTTP request and close the connection."""
        try:
            request_line = await reader.readline()
            # Drain (and ignore) the request headers.
            while True:
                line = await reader.readline()
                if line in (b"", b"\r\n", b"\n"):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            method = parts[0] if parts else ""
            path = parts[1].split("?", 1)[0] if len(parts) > 1 else ""
            if method != "GET":
                body, ctype, status = "method not allowed\n", "text/plain", 405
            elif path == "/metrics":
                body, ctype, status = (
                    metrics_text(self._server),
                    PROM_CONTENT_TYPE,
                    200,
                )
            elif path == "/health":
                body, ctype, status = (
                    json.dumps(server_health(self._server), indent=2) + "\n",
                    "application/json",
                    200,
                )
            else:
                body, ctype, status = "not found\n", "text/plain", 404
            payload = body.encode("utf-8")
            head = (
                f"{_STATUS_LINES[status]}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to serve
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform-dependent
                pass
