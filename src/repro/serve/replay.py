"""Replay clients: feed recorded or seeded streams into a StreamServer.

The serving tier is validated by *replay*: take a stream the simulators
could run — freshly sampled through the pinned seed-spawning scheme
(:func:`~repro.sim.engine.spawn_rng`) or reconstructed from a recorded
:mod:`repro.obs` trace file — and push it through a
:class:`~repro.serve.server.StreamServer` with one or more concurrent
producers.  ``run_replay`` is the synchronous one-call orchestration
used by the ``serve`` CLI subcommand and the benchmark harness.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence, Union

from ..obs import read_trace
from ..obs.recorder import NULL_RECORDER, CounterRecorder, Recorder
from ..policies.base import ReplacementPolicy
from ..sim.engine import ExperimentSpec, spawn_rng
from ..streams.base import StreamModel, Value
from .server import StreamServer

__all__ = [
    "arrivals_from_trace",
    "generate_join_stream",
    "generate_multi_join_stream",
    "generate_reference_stream",
    "replay_join",
    "replay_multi",
    "replay_reference",
    "ReplaySummary",
    "run_replay",
]


# ----------------------------------------------------------------------
# Stream sources
# ----------------------------------------------------------------------
def generate_join_stream(
    r_model: StreamModel,
    s_model: StreamModel,
    length: int,
    seed: int,
    run: int = 0,
) -> tuple[list[Value], list[Value]]:
    """Sample one seeded (R, S) stream pair for replay.

    Uses :func:`~repro.sim.engine.spawn_rng` with the same
    ``(seed, run)`` derivation as :func:`~repro.sim.runner.generate_paths`
    — run ``k`` of a simulator experiment and a server replay of
    ``(seed, run=k)`` see the identical stream, which is what the parity
    suite leans on.
    """
    rng = spawn_rng(seed, run)
    return (
        r_model.sample_path(length, rng),
        s_model.sample_path(length, rng),
    )


def generate_multi_join_stream(
    models: Mapping[str, StreamModel],
    length: int,
    seed: int,
    run: int = 0,
) -> dict[str, list[Value]]:
    """Sample one seeded per-stream value mapping for multi-join replay.

    One :func:`~repro.sim.engine.spawn_rng` generator is consumed by the
    models in mapping order — the same convention a scalar
    :class:`~repro.sim.multi_join.MultiJoinSimulator` caller uses when
    sampling its ``streams`` argument, so simulator and server replays
    of ``(seed, run)`` see identical arrivals.
    """
    rng = spawn_rng(seed, run)
    return {
        name: model.sample_path(length, rng)
        for name, model in models.items()
    }


def generate_reference_stream(
    model: StreamModel, length: int, seed: int, run: int = 0
) -> list[Value]:
    """Sample one seeded reference stream for caching-problem replay."""
    return model.sample_path(length, spawn_rng(seed, run))


def arrivals_from_trace(
    path: str,
) -> tuple[list[Value], list[Value]]:
    """Reconstruct per-step (R, S) arrivals from a recorded trace file.

    Reads ``arrival`` events out of a :mod:`repro.obs` JSONL trace
    (written by any traced run) and rebuilds the dense per-step value
    lists, missing sides filled with ``None`` ("−").  Cache-kind traces
    only carry R-side arrivals; their S list comes back all-``None`` and
    the R list doubles as the reference stream.
    """
    events = read_trace(path)
    arrivals: dict[int, dict[str, Value]] = {}
    max_t = -1
    for event in events:
        if event.get("kind") != "arrival":
            continue
        t = int(event["t"])
        max_t = max(max_t, t)
        arrivals.setdefault(t, {})[event["side"]] = event.get("value")
    r_values: list[Value] = [None] * (max_t + 1)
    s_values: list[Value] = [None] * (max_t + 1)
    for t, sides in arrivals.items():
        r_values[t] = sides.get("R")
        s_values[t] = sides.get("S")
    return r_values, s_values


# ----------------------------------------------------------------------
# Producers
# ----------------------------------------------------------------------
async def replay_join(
    server: StreamServer,
    r_values: Sequence[Value],
    s_values: Sequence[Value],
    *,
    n_producers: int = 1,
) -> int:
    """Push a join stream through the server with concurrent producers.

    Producer ``i`` of ``P`` submits steps ``i, i + P, i + 2P, ...``
    concurrently.  With one producer (the default) submission order is
    exactly the simulator's step order, which keeps single-shard replay
    deterministic; more producers demonstrate concurrent ingestion and
    backpressure but make per-shard arrival interleaving scheduling-
    dependent.  Returns the number of ticks submitted.
    """
    n = min(len(r_values), len(s_values))

    async def producer(offset: int) -> None:
        for t in range(offset, n, n_producers):
            await server.submit(t, r_values[t], s_values[t])

    if n_producers == 1:
        await producer(0)
    else:
        await asyncio.gather(*(producer(i) for i in range(n_producers)))
    return n


async def replay_multi(
    server: StreamServer,
    streams: Mapping[str, Sequence[Value]],
    *,
    n_producers: int = 1,
) -> int:
    """Push a multi-join stream mapping through the server.

    ``streams`` maps stream name to its per-step value list; ticks are
    truncated to the shortest stream, mirroring the scalar simulator.
    The producer-striding contract matches :func:`replay_join`.
    """
    n = min((len(v) for v in streams.values()), default=0)

    async def producer(offset: int) -> None:
        for t in range(offset, n, n_producers):
            await server.submit_multi(
                t, {name: streams[name][t] for name in streams}
            )

    if n_producers == 1:
        await producer(0)
    else:
        await asyncio.gather(*(producer(i) for i in range(n_producers)))
    return n


async def replay_reference(
    server: StreamServer,
    references: Sequence[Value],
    *,
    n_producers: int = 1,
) -> int:
    """Push a caching-problem reference stream through the server."""
    n = len(references)

    async def producer(offset: int) -> None:
        for t in range(offset, n, n_producers):
            await server.submit_reference(t, references[t])

    if n_producers == 1:
        await producer(0)
    else:
        await asyncio.gather(*(producer(i) for i in range(n_producers)))
    return n


# ----------------------------------------------------------------------
# One-call orchestration (CLI + bench)
# ----------------------------------------------------------------------
@dataclass
class ReplaySummary:
    """Operational outcome of one end-to-end server replay."""

    kind: str
    steps: int
    n_shards: int
    n_producers: int
    #: Non-"−" arrivals accepted by the server.
    ingested_arrivals: int
    #: Wall-clock seconds from first submit to full drain.
    seconds: float
    #: Ingested arrivals per wall-clock second.
    tuples_per_sec: float
    #: High-water mark of any shard queue.
    max_queue_depth: int
    #: P² estimates of the ``serve.queue_depth`` series quantiles —
    #: sampled at enqueue *and* dequeue time, so drain phases count
    #: (``None`` when the recorder tracked no such series).
    p90_queue_depth: Optional[float]
    p99_queue_depth: Optional[float]
    backpressure_waits: int
    #: Fraction of the run producers spent blocked on full queues.
    backpressure_duty: float = 0.0
    #: P99 of the ``decide`` span from the merged latency histograms
    #: (``None`` unless spans were active: tracing recorder or live
    #: metrics endpoint).
    p99_decide_ms: Optional[float] = None
    #: Join results (join / multi-join kinds) — else ``None``.
    total_results: Optional[int] = None
    #: Cache hits / misses (cache kind) — else ``None``.
    hits: Optional[int] = None
    misses: Optional[int] = None
    #: Final per-shard occupancy, in shard order.
    shard_occupancy: list[int] = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-ready summary (for the CLI and the bench harness)."""
        out = {
            "kind": self.kind,
            "steps": self.steps,
            "n_shards": self.n_shards,
            "n_producers": self.n_producers,
            "ingested_arrivals": self.ingested_arrivals,
            "seconds": self.seconds,
            "tuples_per_sec": self.tuples_per_sec,
            "max_queue_depth": self.max_queue_depth,
            "p90_queue_depth": self.p90_queue_depth,
            "p99_queue_depth": self.p99_queue_depth,
            "backpressure_waits": self.backpressure_waits,
            "backpressure_duty": self.backpressure_duty,
            "p99_decide_ms": self.p99_decide_ms,
            "shard_occupancy": self.shard_occupancy,
        }
        if self.total_results is not None:
            out["total_results"] = self.total_results
        if self.hits is not None:
            out["hits"] = self.hits
            out["misses"] = self.misses
        return out


def _queue_depth_quantile(recorder: Recorder, q: float) -> Optional[float]:
    """Pull a ``serve.queue_depth`` quantile from a counting recorder."""
    if not isinstance(recorder, CounterRecorder):
        return None
    series = recorder.series_data.get("serve.queue_depth")
    if series is None:
        return None
    return series.quantile(q)


async def _replay(
    server: StreamServer,
    r_values: Union[Sequence[Value], Mapping[str, Sequence[Value]]],
    s_values: Optional[Sequence[Value]],
    n_producers: int,
    metrics_host: str = "127.0.0.1",
    metrics_port: Optional[int] = None,
    health_path: Optional[str] = None,
) -> tuple[int, float]:
    """Start, feed, drain, and stop the server; time the hot section.

    When ``metrics_port`` is set the live scrape endpoint runs for the
    duration of the replay; when ``health_path`` is set the final
    ``/health`` document is written there as JSON (an offline snapshot
    ``repro.obs top --snapshot`` can render).
    """
    await server.start()
    if metrics_port is not None:
        await server.start_metrics(host=metrics_host, port=metrics_port)
    start = time.perf_counter()
    if server.spec.kind == "join":
        assert s_values is not None
        steps = await replay_join(
            server, r_values, s_values, n_producers=n_producers
        )
    elif server.spec.kind == "multi_join":
        assert isinstance(r_values, Mapping)
        steps = await replay_multi(
            server, r_values, n_producers=n_producers
        )
    else:
        steps = await replay_reference(
            server, r_values, n_producers=n_producers
        )
    await server.drain()
    seconds = time.perf_counter() - start
    if health_path is not None:
        from .metrics import server_health

        with open(health_path, "w", encoding="utf-8") as handle:
            json.dump(server_health(server), handle, indent=2)
            handle.write("\n")
    await server.stop()
    return steps, seconds


def run_replay(
    spec: ExperimentSpec,
    policy_factory: Callable[[], ReplacementPolicy],
    r_values: Union[Sequence[Value], Mapping[str, Sequence[Value]]],
    s_values: Optional[Sequence[Value]] = None,
    *,
    n_shards: int = 1,
    queue_maxsize: int = 1024,
    n_producers: int = 1,
    step_delay: float = 0.0,
    recorder: Recorder = NULL_RECORDER,
    server_factory: Callable[..., StreamServer] = StreamServer,
    metrics_host: str = "127.0.0.1",
    metrics_port: Optional[int] = None,
    health_path: Optional[str] = None,
) -> ReplaySummary:
    """Replay a stream through a fresh server and summarize the run.

    Synchronous wrapper (``asyncio.run``) so CLIs, benches, and tests
    need no event-loop plumbing.  ``s_values`` is required for join
    specs and ignored otherwise; for multi-join specs pass the
    name-keyed stream mapping (:func:`generate_multi_join_stream`) as
    ``r_values``.  ``metrics_port`` (0 = ephemeral) serves ``/metrics``
    and ``/health`` live for the duration of the replay;
    ``health_path`` writes the final health document as JSON.
    """
    server = server_factory(
        spec,
        policy_factory,
        n_shards=n_shards,
        queue_maxsize=queue_maxsize,
        recorder=recorder,
        step_delay=step_delay,
    )
    steps, seconds = asyncio.run(
        _replay(
            server,
            r_values,
            s_values,
            n_producers,
            metrics_host=metrics_host,
            metrics_port=metrics_port,
            health_path=health_path,
        )
    )
    decide = server.latency_histograms().get("serve.span.decide_ms")
    summary = ReplaySummary(
        kind=spec.kind,
        steps=steps,
        n_shards=server.n_shards,
        n_producers=n_producers,
        ingested_arrivals=server.ingested_arrivals,
        seconds=seconds,
        tuples_per_sec=(
            server.ingested_arrivals / seconds if seconds > 0 else 0.0
        ),
        max_queue_depth=max(
            (s.max_queue_depth for s in server.shards), default=0
        ),
        p90_queue_depth=_queue_depth_quantile(recorder, 0.9),
        p99_queue_depth=_queue_depth_quantile(recorder, 0.99),
        backpressure_waits=server.backpressure_waits,
        backpressure_duty=server.backpressure_duty,
        p99_decide_ms=(
            decide.quantile(0.99)
            if decide is not None and decide.count
            else None
        ),
        shard_occupancy=[s.occupancy for s in server.shards],
    )
    if spec.kind in ("join", "multi_join"):
        summary.total_results = server.total_results
    else:
        summary.hits = server.hits
        summary.misses = server.misses
    return summary
