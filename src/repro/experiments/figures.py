"""Per-figure experiment harnesses for the paper's evaluation (Section 6).

Each ``figureN`` function regenerates the data behind one figure of the
paper and returns plain data structures (dicts of series) that the
benchmark suite prints as tables.  Parameters default to laptop-scale
values; the paper-scale parameters (50 runs × 5000 tuples) are reachable
through the keyword arguments and are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..analysis.fitting import AR1Fit, fit_ar1
from ..core.lifetime import LExp
from ..core.precompute import (
    H1Table,
    H2Surface,
    ar1_cache_heeb_values,
    ar1_h2_cache,
    random_walk_h1_cache,
)
from ..flow.opt_offline import solve_opt_offline
from ..obs.recorder import NULL_RECORDER, Recorder
from ..policies import make_policy
from ..policies.base import ReplacementPolicy
from ..policies.heeb_policy import AR1CacheHeeb
from ..policies.scheduled import ScheduledPolicy
from ..sim.cache_sim import CacheSimulator
from ..sim.join_sim import JoinSimulator
from ..sim.runner import generate_paths, run_join_experiment
from ..streams.ar1 import AR1Stream
from ..streams.linear_trend import LinearTrendStream
from ..streams.melbourne import melbourne_like_temperatures
from ..streams.noise import (
    DiscreteDistribution,
    bounded_normal,
    bounded_uniform,
    discretized_normal,
)
from ..streams.random_walk import RandomWalkStream
from .configs import JoinConfig, SYNTHETIC_CONFIGS, floor_config

__all__ = [
    "FIGURE_REGISTRY",
    "FigureSpec",
    "figure_ext_multi_sweep",
    "figure_names",
    "make_figure",
    "register_figure",
    "render_figure",
    "run_opt_offline",
    "figure6",
    "figure7",
    "figure8",
    "figure9_12",
    "figure13",
    "figure14",
    "figure15_16",
    "figure17_18",
    "figure19",
]


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def run_opt_offline(
    paths: Sequence[tuple[list, list]],
    cache_size: int,
    warmup: int,
) -> float:
    """Mean OPT-offline result count across paths (solve + replay)."""
    totals = []
    for r_values, s_values in paths:
        solution = solve_opt_offline(r_values, s_values, cache_size)
        policy = ScheduledPolicy(solution)
        sim = JoinSimulator(cache_size, policy, warmup=warmup)
        result = sim.run(r_values, s_values)
        totals.append(result.results_after_warmup)
    return float(np.mean(totals))


def _join_policies(
    config: JoinConfig,
    cache_size: int,
    include_flowexpect: bool,
    lookahead: int,
) -> dict[str, Callable[[], ReplacementPolicy]]:
    """Policy factories for one configuration (everything but OPT).

    Baselines are built through the string-keyed policy registry
    (:func:`repro.policies.make_policy`); only the scenario-calibrated
    HEEB strategy comes from the configuration itself.
    """
    factories: dict[str, Callable[[], ReplacementPolicy]] = {}
    if include_flowexpect:
        factories["FLOWEXPECT"] = lambda: make_policy(
            "flowexpect",
            lookahead=lookahead,
            r_model=config.r_model,
            s_model=config.s_model,
        )
    factories["RAND"] = lambda: make_policy("rand", seed=1)
    factories["PROB"] = lambda: make_policy("prob")
    if config.has_life:
        factories["LIFE"] = lambda: make_policy("life")
    factories["HEEB"] = lambda: config.make_heeb(cache_size)
    return factories


def _run_config(
    config: JoinConfig,
    cache_size: int,
    length: int,
    n_runs: int,
    warmup: int,
    seed: int,
    include_opt: bool = True,
    include_flowexpect: bool = False,
    lookahead: int = 5,
    batch: bool = False,
    engine: str | None = None,
    recorder: Recorder = NULL_RECORDER,
) -> dict[str, float]:
    """Mean results for every algorithm on one configuration.

    ``engine`` prefers an execution tier (``"batch"``, ``"parallel"``)
    for each policy's trials; capability negotiation falls back to the
    scalar loop where no exact adapter exists (OPT and FlowExpect always
    negotiate down to scalar).  ``batch=True`` is the legacy alias for
    ``engine="batch"``.  ``recorder`` is the observability sink shared
    by every policy's trials (:mod:`repro.obs`).
    """
    if engine is None and batch:
        engine = "batch"
    paths = generate_paths(config.r_model, config.s_model, length, n_runs, seed)
    out: dict[str, float] = {}
    if include_opt:
        out["OPT-OFFLINE"] = run_opt_offline(paths, cache_size, warmup)
    factories = _join_policies(config, cache_size, include_flowexpect, lookahead)
    for name, factory in factories.items():
        result = run_join_experiment(
            factory,
            paths,
            cache_size,
            warmup=warmup,
            r_model=config.r_model,
            s_model=config.s_model,
            window_oracle=config.window_oracle,
            engine=engine,
            recorder=recorder,
        )
        out[name] = result.mean_results
    return out


# ----------------------------------------------------------------------
# Figure 6: precomputed h_R for random walks with drift 0 / 2 / 4
# ----------------------------------------------------------------------
def figure6(
    drifts: Sequence[int] = (0, 2, 4),
    alpha: float = 10.0,
    step_sigma: float = 1.0,
    horizon: int | None = None,
    max_offset: int = 25,
) -> dict[int, H1Table]:
    """The caching ``h_R`` curves of Figure 6 (Section 5.5)."""
    estimator = LExp(alpha)
    if horizon is None:
        horizon = estimator.suggested_horizon(1e-6)
    out: dict[int, H1Table] = {}
    for drift in drifts:
        walk = RandomWalkStream(discretized_normal(step_sigma), drift=drift)
        out[drift] = random_walk_h1_cache(
            walk, estimator, horizon=horizon, max_offset=max_offset
        )
    return out


# ----------------------------------------------------------------------
# Figure 7: the TOWER / ROOF / FLOOR noise pdfs
# ----------------------------------------------------------------------
def figure7(bound: int = 15) -> dict[str, DiscreteDistribution]:
    """The S-stream noise distributions of Figure 7."""
    return {
        "TOWER": bounded_normal(bound, 2.0),
        "ROOF": bounded_normal(bound, 5.0),
        "FLOOR": bounded_uniform(bound),
    }


# ----------------------------------------------------------------------
# Figure 8: all algorithms across the synthetic configurations
# ----------------------------------------------------------------------
def figure8(
    length: int = 600,
    cache_size: int = 10,
    n_runs: int = 5,
    warmup: int | None = None,
    seed: int = 0,
    include_flowexpect: bool = True,
    lookahead: int = 5,
    configs: dict[str, JoinConfig] | None = None,
    batch: bool = False,
    engine: str | None = None,
    recorder: Recorder = NULL_RECORDER,
) -> dict[str, dict[str, float]]:
    """Figure 8: average join counts per algorithm per configuration.

    Paper parameters: ``length=5000, n_runs=50, cache_size=10`` ("the
    scale is intentionally kept small so that FlowExpect is feasible").
    """
    if warmup is None:
        warmup = 4 * cache_size
    if configs is None:
        configs = SYNTHETIC_CONFIGS()
    out: dict[str, dict[str, float]] = {}
    for name, config in configs.items():
        out[name] = _run_config(
            config,
            cache_size,
            length,
            n_runs,
            warmup,
            seed,
            include_opt=True,
            include_flowexpect=include_flowexpect,
            lookahead=lookahead,
            batch=batch,
            engine=engine,
            recorder=recorder,
        )
    return out


# ----------------------------------------------------------------------
# Figures 9-12: cache-size sweeps per configuration
# ----------------------------------------------------------------------
def figure9_12(
    config: JoinConfig,
    cache_sizes: Sequence[int] = (1, 5, 10, 20, 30, 50),
    length: int = 1000,
    n_runs: int = 3,
    warmup_factor: int = 4,
    seed: int = 0,
    batch: bool = False,
    engine: str | None = None,
    recorder: Recorder = NULL_RECORDER,
) -> dict[str, list[float]]:
    """One cache-size sweep (Figure 9=TOWER, 10=ROOF, 11=FLOOR, 12=WALK).

    Paper parameters: sizes 1..50, ``length=5000, n_runs=50``.
    FlowExpect is excluded, as in the paper.
    """
    out: dict[str, list[float]] = {}
    for k in cache_sizes:
        warmup = warmup_factor * k
        row = _run_config(
            config,
            k,
            length,
            n_runs,
            warmup,
            seed,
            include_opt=True,
            include_flowexpect=False,
            batch=batch,
            engine=engine,
            recorder=recorder,
        )
        for name, value in row.items():
            out.setdefault(name, []).append(value)
    return out


# ----------------------------------------------------------------------
# Figure 13: REAL -- caching the Melbourne-like temperature stream
# ----------------------------------------------------------------------
@dataclass
class Figure13Result:
    memory_sizes: list[int]
    misses: dict[str, list[float]]
    fit: AR1Fit
    n_days: int


def figure13(
    memory_sizes: Sequence[int] = (10, 50, 100, 200, 300),
    n_days: int = 3650,
    seed: int = 0,
    bucket: float = 0.1,
    exact_steps: int = 60,
    n_controls: int = 5,
) -> Figure13Result:
    """Figure 13: misses vs memory for LFD, RAND, LRU, PROB(LFU), HEEB.

    Pipeline per Section 6.5: generate the temperature series (our
    synthetic Melbourne substitute), fit an AR(1) by MLE, precompute the
    ``h2`` surface at ``n_controls²`` control points, run the caching
    simulation.  One run (real-data experiment in the paper is a single
    run too).
    """
    rng = np.random.default_rng(seed)
    temps = melbourne_like_temperatures(n_days, rng)
    fit = fit_ar1(temps)
    model = AR1Stream(fit.phi0, fit.phi1, fit.sigma, bucket=bucket)
    reference = [model.to_bucket(t) for t in temps]

    lo, hi = min(reference), max(reference)
    v_grid = np.linspace(lo, hi, n_controls).round().astype(int)
    x_grid = np.linspace(lo * bucket, hi * bucket, n_controls)

    misses: dict[str, list[float]] = {}
    for m in memory_sizes:
        estimator = LExp(float(m))
        surface = ar1_h2_cache(
            model, estimator, v_grid, x_grid, exact_steps=exact_steps
        )
        policies: dict[str, ReplacementPolicy] = {
            "LFD": make_policy("lfd", reference=reference),
            "RAND": make_policy("rand", seed=1),
            "LRU": make_policy("lru"),
            "PROB(LFU)": make_policy("lfu"),
            "HEEB": make_policy("heeb", strategy=AR1CacheHeeb(model, surface)),
        }
        for name, policy in policies.items():
            sim = CacheSimulator(m, policy, reference_model=model)
            result = sim.run(reference)
            misses.setdefault(name, []).append(float(result.misses))
    return Figure13Result(
        memory_sizes=list(memory_sizes),
        misses=misses,
        fit=fit,
        n_days=n_days,
    )


# ----------------------------------------------------------------------
# Figure 14 / Figures 17-18: HEEB memory allocation between streams
# ----------------------------------------------------------------------
def _allocation_config(lag: int, sigma_r: float, sigma_s: float) -> JoinConfig:
    """A TOWER-style configuration with identical bounds on both streams.

    Figure 14 starts from "R and S having identical statistical
    properties and no lag" and varies lag / S-noise spread.
    """
    from ..core.lifetime import alpha_for_mean_lifetime
    from ..policies.heeb_policy import TrendJoinHeeb
    from ..policies.window_oracle import TrendWindowOracle

    bound = 10
    r_model = LinearTrendStream(bounded_normal(bound, sigma_r), speed=1.0, lag=lag)
    s_model = LinearTrendStream(bounded_normal(bound, sigma_s), speed=1.0, lag=0)
    alpha = alpha_for_mean_lifetime(max(1.5, sigma_r + sigma_s))
    return JoinConfig(
        name=f"lag={lag},sigmaR={sigma_r},sigmaS={sigma_s}",
        r_model=r_model,
        s_model=s_model,
        heeb_alpha_for=lambda k: alpha,
        heeb_strategy_for=lambda k: TrendJoinHeeb(LExp(alpha)),
        window_oracle=TrendWindowOracle(r_model, s_model),
    )


def figure14(
    length: int = 2000,
    cache_size: int = 10,
    n_runs: int = 3,
    seed: int = 0,
) -> dict[str, np.ndarray]:
    """Figure 14: fraction of cache held by R tuples under HEEB.

    Variants: identical streams; R lagging by 2 and 4; S noise with 2×
    and 4× the standard deviation.  Paper: ``length=5000``.
    """
    variants = {
        "R AND S HAVE SAME PROPERTIES": _allocation_config(0, 1.0, 1.0),
        "R LAGS BEHIND BY 2": _allocation_config(2, 1.0, 1.0),
        "R LAGS BEHIND BY 4": _allocation_config(4, 1.0, 1.0),
        "S NOISE HAS TWICE THE STDEV": _allocation_config(0, 1.0, 2.0),
        "S NOISE HAS FOUR TIMES THE STDEV": _allocation_config(0, 1.0, 4.0),
    }
    out: dict[str, np.ndarray] = {}
    for label, config in variants.items():
        paths = generate_paths(config.r_model, config.s_model, length, n_runs, seed)
        result = run_join_experiment(
            lambda config=config: config.make_heeb(cache_size),
            paths,
            cache_size,
            r_model=config.r_model,
            s_model=config.s_model,
            window_oracle=config.window_oracle,
        )
        out[label] = result.mean_r_fraction()
    return out


def figure17_18(
    length: int = 2000,
    cache_size: int = 10,
    n_runs: int = 3,
    seed: int = 0,
) -> dict[str, dict[str, np.ndarray]]:
    """Figures 17/18: occupancy over time for variance ratios and lags."""
    variance_variants = {
        "Std0:Std1 = 1:1": _allocation_config(0, 1.0, 1.0),
        "Std0:Std1 = 1:2": _allocation_config(0, 1.0, 2.0),
        "Std0:Std1 = 1:4": _allocation_config(0, 1.0, 4.0),
    }
    lag_variants = {
        "stream0 is 1 behind stream1": _allocation_config(1, 1.0, 1.0),
        "stream0 is 2 behind stream1": _allocation_config(2, 1.0, 1.0),
        "stream0 is 4 behind stream1": _allocation_config(4, 1.0, 1.0),
    }
    out: dict[str, dict[str, np.ndarray]] = {"variance": {}, "lag": {}}
    for group, variants in (("variance", variance_variants), ("lag", lag_variants)):
        for label, config in variants.items():
            paths = generate_paths(
                config.r_model, config.s_model, length, n_runs, seed
            )
            result = run_join_experiment(
                lambda config=config: config.make_heeb(cache_size),
                paths,
                cache_size,
                r_model=config.r_model,
                s_model=config.s_model,
                window_oracle=config.window_oracle,
            )
            out[group][label] = result.mean_r_fraction()
    return out


# ----------------------------------------------------------------------
# Figures 15/16: actual vs approximated h2 surface for REAL
# ----------------------------------------------------------------------
@dataclass
class SurfaceComparison:
    actual: H2Surface
    approximated: H2Surface
    dense_v: np.ndarray
    dense_x: np.ndarray
    actual_values: np.ndarray
    approx_values: np.ndarray

    @property
    def max_abs_error(self) -> float:
        return float(np.max(np.abs(self.actual_values - self.approx_values)))

    @property
    def mean_abs_error(self) -> float:
        return float(np.mean(np.abs(self.actual_values - self.approx_values)))

    @property
    def max_value(self) -> float:
        return float(np.max(self.actual_values))


def figure15_16(
    phi0: float = 5.59,
    phi1: float = 0.72,
    sigma: float = 4.22,
    bucket: float = 0.1,
    alpha: float = 100.0,
    n_controls: int = 5,
    n_dense: int = 9,
    exact_steps: int = 40,
    span_sigmas: float = 2.5,
) -> SurfaceComparison:
    """Figures 15/16: the ``h2`` surface and its 25-control-point spline.

    The "actual" surface is computed exactly on a dense grid; the
    approximation interpolates ``n_controls²`` control points (paper: 25,
    bicubic).  Returns both plus error statistics.
    """
    model = AR1Stream(phi0, phi1, sigma, bucket=bucket)
    center = model.stationary_mean
    half = span_sigmas * model.stationary_std
    v_lo, v_hi = model.to_bucket(center - half), model.to_bucket(center + half)

    control_v = np.linspace(v_lo, v_hi, n_controls).round().astype(int)
    control_x = np.linspace(
        (center - half), (center + half), n_controls
    )
    estimator = LExp(alpha)
    approximated = ar1_h2_cache(
        model, estimator, control_v, control_x, exact_steps=exact_steps
    )

    dense_v = np.linspace(v_lo, v_hi, n_dense).round().astype(int)
    dense_x = np.linspace(center - half, center + half, n_dense)
    actual_values = np.zeros((dense_v.size, dense_x.size))
    for i, v in enumerate(dense_v):
        actual_values[i, :] = ar1_cache_heeb_values(
            model, int(v), dense_x, estimator, exact_steps=exact_steps
        )
    actual = H2Surface(dense_v.astype(float), dense_x, actual_values)
    approx_values = approximated.evaluate_grid(
        dense_v.astype(float), dense_x
    )
    return SurfaceComparison(
        actual=actual,
        approximated=approximated,
        dense_v=dense_v,
        dense_x=dense_x,
        actual_values=actual_values,
        approx_values=approx_values,
    )


# ----------------------------------------------------------------------
# Figure 19: FlowExpect look-ahead distance
# ----------------------------------------------------------------------
def figure19(
    delta_ts: Sequence[int] = (1, 2, 3, 5, 8),
    length: int = 200,
    cache_size: int = 10,
    n_runs: int = 2,
    warmup: int | None = None,
    seed: int = 0,
    recorder: Recorder = NULL_RECORDER,
) -> dict[str, list[float]]:
    """Figure 19: FlowExpect performance vs look-ahead distance ΔT.

    Streams follow the FLOOR scenario (linear trend, bounded uniform
    noise).  Paper parameters: ``length=500, cache_size=20`` and ΔT up to
    30.  The baselines (RAND/PROB/LIFE) are look-ahead independent and
    reported as flat series.
    """
    if warmup is None:
        warmup = 4 * cache_size
    config = floor_config()
    paths = generate_paths(config.r_model, config.s_model, length, n_runs, seed)

    out: dict[str, list[float]] = {"FLOWEXPECT": []}
    for dt in delta_ts:
        result = run_join_experiment(
            lambda dt=dt: make_policy(
                "flowexpect",
                lookahead=dt,
                r_model=config.r_model,
                s_model=config.s_model,
            ),
            paths,
            cache_size,
            warmup=warmup,
            r_model=config.r_model,
            s_model=config.s_model,
            window_oracle=config.window_oracle,
            recorder=recorder,
        )
        out["FLOWEXPECT"].append(result.mean_results)

    for name, factory in (
        ("RAND", lambda: make_policy("rand", seed=1)),
        ("PROB", lambda: make_policy("prob")),
        ("LIFE", lambda: make_policy("life")),
    ):
        result = run_join_experiment(
            factory,
            paths,
            cache_size,
            warmup=warmup,
            r_model=config.r_model,
            s_model=config.s_model,
            window_oracle=config.window_oracle,
            recorder=recorder,
        )
        out[name] = [result.mean_results] * len(delta_ts)
    return out


# ----------------------------------------------------------------------
# Extension figures and the figure registry
# ----------------------------------------------------------------------
def figure_ext_multi_sweep(
    config_names: Sequence[str] = ("CHAIN3", "STAR5"),
    cache_sizes: Sequence[int] = (4, 8, 12),
    length: int = 300,
    n_runs: int = 2,
    seed: int = 0,
    engine: str | None = None,
    recorder: Recorder = NULL_RECORDER,
) -> dict[str, dict[str, list[float]]]:
    """Cache-size sweep over n-way topologies: trie vs unified HEEB.

    For each topology in ``config_names`` (keys of the multi-config
    registry, e.g. CHAIN3/STAR5) the sweep runs the shared-prefix
    :class:`~repro.policies.trie.TrieCachePolicy` and the unified
    partner-aware HEEB over the same sampled trials at each cache size,
    returning ``{config: {policy: [mean results per cache size]}}`` —
    the ROADMAP item-4 comparison closing the n-way workload.
    """
    from ..sim.engine import spawn_rng
    from ..sim.runner import run_multi_join_experiment
    from .configs import make_multi_config

    out: dict[str, dict[str, list[float]]] = {}
    for config_name in config_names:
        config = make_multi_config(config_name)
        trials = []
        for run in range(n_runs):
            rng = spawn_rng(seed, run)
            trials.append(
                {
                    name: model.sample_path(length, rng)
                    for name, model in config.models.items()
                }
            )
        rows: dict[str, list[float]] = {}
        for cache_size in cache_sizes:
            for label, factory in (
                ("HEEB", lambda k=cache_size: config.make_heeb(k)),
                ("TRIE", lambda: make_policy("trie")),
            ):
                result = run_multi_join_experiment(
                    factory,
                    trials,
                    cache_size,
                    config.queries,
                    warmup=0,
                    models=config.models,
                    engine=engine,
                    recorder=recorder,
                )
                rows.setdefault(label, []).append(result.mean_results)
        out[config_name] = rows
    return out


@dataclass(frozen=True)
class FigureSpec:
    """One registered figure: a data builder plus a headless renderer.

    ``builder(**kwargs)`` regenerates the figure's data; ``render(data,
    **meta)`` turns it into the text-table form every environment can
    produce (the optional matplotlib PNG path stays CLI-only).  The
    registry gives scenario sweeps one comparison pipeline: new figures
    drop in with :func:`register_figure` and are immediately listable
    and renderable by name.
    """

    name: str
    title: str
    builder: Callable[..., dict]
    render: Callable[..., str]


FIGURE_REGISTRY: dict[str, FigureSpec] = {}


def register_figure(spec: FigureSpec) -> FigureSpec:
    """Add ``spec`` to the registry (name must be unused)."""
    if spec.name in FIGURE_REGISTRY:
        raise ValueError(f"figure {spec.name!r} already registered")
    FIGURE_REGISTRY[spec.name] = spec
    return spec


def figure_names() -> list[str]:
    """Registered figure names, sorted."""
    return sorted(FIGURE_REGISTRY)


def make_figure(name: str, **kwargs) -> dict:
    """Build a registered figure's data by name."""
    try:
        spec = FIGURE_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown figure {name!r}; registered: {figure_names()}"
        ) from None
    return spec.builder(**kwargs)


def render_figure(name: str, **kwargs) -> str:
    """Build and render a registered figure headlessly (text tables)."""
    spec = FIGURE_REGISTRY[name]
    data = spec.builder(**kwargs)
    return spec.render(data, **kwargs)


def _render_ext_multi_sweep(
    data: dict[str, dict[str, list[float]]],
    cache_sizes: Sequence[int] = (4, 8, 12),
    **kwargs,
) -> str:
    """Text tables for :func:`figure_ext_multi_sweep` (one per config)."""
    from .report import format_series_table

    blocks = []
    for config_name, rows in data.items():
        table = format_series_table("cache", list(cache_sizes), rows)
        blocks.append(f"[{config_name}] trie vs unified HEEB\n{table}")
    return "\n\n".join(blocks)


register_figure(
    FigureSpec(
        name="ext-multi-sweep",
        title="n-way cache-size sweep: trie vs unified HEEB",
        builder=figure_ext_multi_sweep,
        render=_render_ext_multi_sweep,
    )
)
