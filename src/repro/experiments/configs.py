"""Experiment configurations of Section 6.1.

Five configurations: TOWER, ROOF, FLOOR (linear trend, bounded noise),
WALK (random walks), and REAL (Melbourne-like temperatures, caching).

The synthetic trend configurations share: both streams drift at speed 1
with R lagging one step behind S; noise bounds are ``[-10, 10]`` for R
and ``[-15, 15]`` for S.  TOWER uses bounded normal noise with standard
deviations 1 (R) and 2 (S); ROOF uses 3.3 and 5; FLOOR uses uniform
noise.  WALK uses two drift-free random walks with discretized N(0, 1)
steps.

HEEB's ``α`` follows the paper's calibration rules:

* FLOOR (Section 5.3): average lifetime ≈ ``(w_R + w_S) / 2``;
* TOWER / ROOF (Section 5.4): average lifetime ≈ time for the trend to
  advance twice the noise standard deviation (we use the mean of the two
  streams' standard deviations);
* WALK and REAL (Sections 5.5, 6.5): ``α`` = cache size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.lifetime import LExp, alpha_for_mean_lifetime
from ..policies.base import ReplacementPolicy, WindowOracle
from ..policies.heeb_policy import (
    GenericJoinHeeb,
    HeebPolicy,
    HeebStrategy,
    TrendJoinHeeb,
    WalkJoinHeeb,
)
from ..policies.window_oracle import TrendWindowOracle
from ..streams.base import StreamModel
from ..streams.linear_trend import LinearTrendStream
from ..streams.noise import (
    bounded_normal,
    bounded_uniform,
    discretized_normal,
    from_mapping,
)
from ..streams.random_walk import RandomWalkStream
from ..streams.stationary import StationaryStream

__all__ = [
    "JoinConfig",
    "MultiJoinConfig",
    "tower_config",
    "roof_config",
    "floor_config",
    "walk_config",
    "chain3_config",
    "star5_config",
    "CONFIG_REGISTRY",
    "MULTI_CONFIG_REGISTRY",
    "make_config",
    "make_multi_config",
    "available_configs",
    "available_multi_configs",
    "SYNTHETIC_CONFIGS",
    "MULTI_CONFIGS",
    "PAPER_LENGTH",
    "PAPER_RUNS",
    "PAPER_CACHE_SIZE",
]

#: Paper-scale parameters (Section 6.2): 50 runs × 5000-tuple streams,
#: cache of 10 in the headline comparison.
PAPER_LENGTH = 5000
PAPER_RUNS = 50
PAPER_CACHE_SIZE = 10

#: Noise bounds shared by the trend configurations.
R_BOUND = 10
S_BOUND = 15


@dataclass
class JoinConfig:
    """One synthetic joining experiment configuration."""

    name: str
    r_model: StreamModel
    s_model: StreamModel
    heeb_alpha_for: Callable[[int], float]
    #: Builds the scenario-appropriate HEEB strategy for a cache size.
    heeb_strategy_for: Callable[[int], HeebStrategy]
    #: Window oracle handed to RAND / PROB / LIFE; None when no window
    #: exists (WALK).
    window_oracle: Optional[WindowOracle] = None
    #: Whether LIFE applies (it needs a window; excluded for WALK).
    has_life: bool = field(default=True)

    def make_heeb(self, cache_size: int) -> ReplacementPolicy:
        return HeebPolicy(self.heeb_strategy_for(cache_size))


def _trend_config(
    name: str,
    r_noise,
    s_noise,
    mean_lifetime: float,
    lag: int = 1,
) -> JoinConfig:
    r_model = LinearTrendStream(r_noise, speed=1.0, lag=lag)
    s_model = LinearTrendStream(s_noise, speed=1.0, lag=0)
    alpha = alpha_for_mean_lifetime(mean_lifetime)

    def heeb_alpha_for(cache_size: int) -> float:
        return alpha

    def heeb_strategy_for(cache_size: int) -> HeebStrategy:
        return TrendJoinHeeb(LExp(alpha))

    return JoinConfig(
        name=name,
        r_model=r_model,
        s_model=s_model,
        heeb_alpha_for=heeb_alpha_for,
        heeb_strategy_for=heeb_strategy_for,
        window_oracle=TrendWindowOracle(r_model, s_model),
        has_life=True,
    )


def tower_config(
    sigma_r: float = 1.0, sigma_s: float = 2.0, lag: int = 1
) -> JoinConfig:
    """TOWER: narrow bounded-normal noise (Section 5.4 scenario)."""
    return _trend_config(
        "TOWER",
        bounded_normal(R_BOUND, sigma_r),
        bounded_normal(S_BOUND, sigma_s),
        mean_lifetime=max(1.5, sigma_r + sigma_s),
        lag=lag,
    )


def roof_config(sigma_r: float = 3.3, sigma_s: float = 5.0) -> JoinConfig:
    """ROOF: wide bounded-normal noise."""
    return _trend_config(
        "ROOF",
        bounded_normal(R_BOUND, sigma_r),
        bounded_normal(S_BOUND, sigma_s),
        mean_lifetime=sigma_r + sigma_s,
    )


def floor_config() -> JoinConfig:
    """FLOOR: bounded uniform noise (Section 5.3 scenario)."""
    return _trend_config(
        "FLOOR",
        bounded_uniform(R_BOUND),
        bounded_uniform(S_BOUND),
        mean_lifetime=(R_BOUND + S_BOUND) / 2,
    )


def walk_config(step_sigma: float = 1.0, drift: int = 0) -> JoinConfig:
    """WALK: two independent random walks (Section 5.5 scenario)."""
    step = discretized_normal(step_sigma)
    r_model = RandomWalkStream(step, drift=drift, start=0)
    s_model = RandomWalkStream(step, drift=drift, start=0)

    def heeb_alpha_for(cache_size: int) -> float:
        return float(max(2, cache_size))

    def heeb_strategy_for(cache_size: int) -> HeebStrategy:
        # α = cache size per Section 5.5; a modest tolerance keeps the
        # precomputed h1 horizon (≈ α·ln(1/tol)) small.
        estimator = LExp(heeb_alpha_for(cache_size))
        horizon = estimator.suggested_horizon(1e-6)
        return WalkJoinHeeb(estimator, horizon=horizon)

    return JoinConfig(
        name="WALK",
        r_model=r_model,
        s_model=s_model,
        heeb_alpha_for=heeb_alpha_for,
        heeb_strategy_for=heeb_strategy_for,
        window_oracle=None,
        has_life=False,
    )


@dataclass
class MultiJoinConfig:
    """One Appendix-C n-way joining experiment configuration.

    All models are stationary so every tier can run the topology: the
    scalar reference, the exact batch adapters
    (:class:`~repro.policies.batch.BatchMultiStationaryHeeb` requires
    stationary query streams), and the serving tier.
    """

    name: str
    #: Stream name -> model, in arrival order.
    models: dict[str, StreamModel]
    #: Binary equijoin query edges as stream-name pairs.
    queries: list[tuple[str, str]]
    heeb_alpha_for: Callable[[int], float]

    def make_heeb(self, cache_size: int) -> ReplacementPolicy:
        """The Appendix-C HEEB (partner-summed generic strategy)."""
        return HeebPolicy(
            GenericJoinHeeb(LExp(self.heeb_alpha_for(cache_size)))
        )


def _skewed_dist(n_values: int, skew: float):
    """Geometric-weight distribution over ``1..n_values`` (skew < 1)."""
    weights = {v: skew ** (v - 1) for v in range(1, n_values + 1)}
    total = sum(weights.values())
    return from_mapping({v: w / total for v, w in weights.items()})


def chain3_config(n_values: int = 12, skew: float = 0.8) -> MultiJoinConfig:
    """CHAIN3: three stationary streams joined in a chain A–B–C.

    The middle stream ``B`` participates in both queries, so its tuples
    carry twice the benefit — the topology that separates partner-aware
    policies from binary ones.
    """
    dist = _skewed_dist(n_values, skew)
    return MultiJoinConfig(
        name="CHAIN3",
        models={
            "A": StationaryStream(dist),
            "B": StationaryStream(dist),
            "C": StationaryStream(dist),
        },
        queries=[("A", "B"), ("B", "C")],
        heeb_alpha_for=lambda cache_size: float(max(2, cache_size)),
    )


def star5_config(n_values: int = 16, skew: float = 0.85) -> MultiJoinConfig:
    """STAR5: a hub stream joined against four stationary leaves."""
    dist = _skewed_dist(n_values, skew)
    models: dict[str, StreamModel] = {"HUB": StationaryStream(dist)}
    queries = []
    for i in range(1, 5):
        leaf = f"L{i}"
        models[leaf] = StationaryStream(dist)
        queries.append(("HUB", leaf))
    return MultiJoinConfig(
        name="STAR5",
        models=models,
        queries=queries,
        heeb_alpha_for=lambda cache_size: float(max(2, cache_size)),
    )


#: String-keyed configuration registry: experiment harnesses and the CLI
#: build scenarios by name instead of importing factory functions.
CONFIG_REGISTRY: dict[str, Callable[..., JoinConfig]] = {
    "TOWER": tower_config,
    "ROOF": roof_config,
    "FLOOR": floor_config,
    "WALK": walk_config,
}

#: Multi-join (n-way) topologies, kept in their own registry so the
#: binary harnesses that iterate :func:`SYNTHETIC_CONFIGS` are
#: unaffected.
MULTI_CONFIG_REGISTRY: dict[str, Callable[..., MultiJoinConfig]] = {
    "CHAIN3": chain3_config,
    "STAR5": star5_config,
}


def make_config(name: str, **kwargs):
    """Build a configuration by registry name.

    Binary names resolve first; unmatched names fall through to the
    multi-join registry, so ``make_config("chain3")`` works wherever a
    config name is accepted.
    """
    factory = CONFIG_REGISTRY.get(name.upper())
    if factory is None:
        factory = MULTI_CONFIG_REGISTRY.get(name.upper())
    if factory is None:
        raise ValueError(
            f"unknown config {name!r}; available: "
            f"{available_configs() + available_multi_configs()}"
        )
    return factory(**kwargs)


def make_multi_config(name: str, **kwargs) -> MultiJoinConfig:
    """Build a multi-join topology by registry name."""
    try:
        factory = MULTI_CONFIG_REGISTRY[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown multi-join config {name!r}; available: "
            f"{available_multi_configs()}"
        ) from None
    return factory(**kwargs)


def available_configs() -> tuple[str, ...]:
    """Registered configuration names, in paper order."""
    return tuple(CONFIG_REGISTRY)


def available_multi_configs() -> tuple[str, ...]:
    """Registered multi-join topology names."""
    return tuple(MULTI_CONFIG_REGISTRY)


def SYNTHETIC_CONFIGS() -> dict[str, JoinConfig]:
    """Fresh instances of all four synthetic configurations."""
    return {name: make_config(name) for name in CONFIG_REGISTRY}


def MULTI_CONFIGS() -> dict[str, MultiJoinConfig]:
    """Fresh instances of the multi-join topologies."""
    return {name: make_multi_config(name) for name in MULTI_CONFIG_REGISTRY}
