"""Command-line runner for the paper's experiments.

Usage examples::

    python -m repro.experiments fig8 --length 600 --runs 3
    python -m repro.experiments fig9 --sizes 1 5 10 20 30 50
    python -m repro.experiments fig13 --memories 10 50 100 200 300
    python -m repro.experiments fig19 --deltas 1 2 3 5 8
    python -m repro.experiments all          # everything, bench-scale

Each command prints the same rows/series the corresponding paper figure
reports.  Paper-scale parameters: ``--length 5000 --runs 50``.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from ..obs import (
    NULL_RECORDER,
    CounterRecorder,
    ProgressRecorder,
    TraceRecorder,
    format_metrics,
)
from ..obs.recorder import Recorder
from .configs import make_config
from .figures import (
    figure6,
    figure7,
    figure8,
    figure9_12,
    figure13,
    figure14,
    figure15_16,
    figure17_18,
    figure19,
)
from .report import format_metadata, format_series_table, format_table


def _print(title: str, body: str) -> None:
    print(f"\n=== {title} ===")
    print(body)


#: Sweep command -> configuration registry key, for progress totals.
_SWEEP_CONFIGS = {
    "fig9": "TOWER",
    "fig10": "ROOF",
    "fig11": "FLOOR",
    "fig12": "WALK",
}


def _progress_total(args: argparse.Namespace) -> int | None:
    """Best-effort expected trial count for the ``--progress`` ETA.

    Counts one trial per (policy, run) pair the command will execute
    through the engines; OPT-OFFLINE solves bypass the engine layer and
    are excluded.  Returns ``None`` (count-only display, no ETA) for
    commands whose totals are not modeled.
    """
    cmd = args.command
    if cmd == "fig8":
        from .configs import SYNTHETIC_CONFIGS

        total = 0
        for config in SYNTHETIC_CONFIGS().values():
            n_policies = 3 + int(config.has_life)
            n_policies += int(not args.no_flowexpect)
            total += n_policies * args.runs
        return total
    if cmd in _SWEEP_CONFIGS:
        config = make_config(_SWEEP_CONFIGS[cmd])
        n_policies = 3 + int(config.has_life)
        return len(args.sizes) * n_policies * args.runs
    if cmd == "fig19":
        return (len(args.deltas) + 3) * args.runs
    return None


def _make_recorder(args: argparse.Namespace) -> Recorder:
    """Build the observability sink the flags ask for.

    ``--trace PATH`` streams JSONL events to ``PATH`` (and implies
    counters); ``--metrics`` collects counters only; ``--progress``
    wraps the sink in a stderr progress line (and implies counters when
    used alone); no flag keeps the default no-op recorder, so
    uninstrumented runs stay free.
    """
    recorder: Recorder = NULL_RECORDER
    if getattr(args, "trace", None):
        recorder = TraceRecorder(path=args.trace)
    elif getattr(args, "metrics", False):
        recorder = CounterRecorder()
    if getattr(args, "progress", False):
        if recorder is NULL_RECORDER:
            # Progress is driven by recorder counters, so it needs a
            # live sink; the counters are collected but only printed
            # when --metrics/--trace asked for them.
            recorder = CounterRecorder()
        return ProgressRecorder(recorder, total=_progress_total(args))
    return recorder


def _finish_recorder(recorder: Recorder, args: argparse.Namespace) -> None:
    """Flush and report whatever the recorder collected."""
    if isinstance(recorder, ProgressRecorder):
        recorder.finish()
    if not recorder.enabled:
        return
    if recorder.trace:
        recorder.close()  # type: ignore[attr-defined]
        print(f"\n[trace written to {args.trace}; summarize it with "
              f"`python -m repro.obs {args.trace}`]")
    if getattr(args, "metrics", False) or getattr(args, "trace", None):
        _print("Observability counters", format_metrics(recorder.snapshot()))


def cmd_fig6(args: argparse.Namespace) -> None:
    curves = figure6(drifts=(0, 2, 4), alpha=args.alpha)
    offsets = list(range(-20, 21, 4))
    series = {f"drift={d}": [curves[d](o) for o in offsets] for d in (0, 2, 4)}
    _print(
        f"Figure 6: h_R offsets (alpha={args.alpha})",
        format_series_table("offset", offsets, series, fmt="{:.4f}"),
    )


def cmd_fig7(args: argparse.Namespace) -> None:
    pdfs = figure7()
    values = list(range(-15, 16, 3))
    series = {n: [d.pmf(v) for v in values] for n, d in pdfs.items()}
    _print(
        "Figure 7: noise pdfs",
        format_series_table("value", values, series, fmt="{:.4f}"),
    )


def cmd_fig8(args: argparse.Namespace) -> None:
    recorder = _make_recorder(args)
    results = figure8(
        length=args.length,
        cache_size=args.cache,
        n_runs=args.runs,
        include_flowexpect=not args.no_flowexpect,
        lookahead=args.lookahead,
        seed=args.seed,
        engine=args.engine,
        recorder=recorder,
    )
    meta = format_metadata(
        cache=args.cache,
        length=args.length,
        runs=args.runs,
        engine=args.engine or "scalar",
    )
    _print(f"Figure 8: average join counts ({meta})", format_table(results))
    _finish_recorder(recorder, args)


def _sweep(config_name: str, args: argparse.Namespace, label: str) -> None:
    recorder = _make_recorder(args)
    out = figure9_12(
        make_config(config_name),
        cache_sizes=tuple(args.sizes),
        length=args.length,
        n_runs=args.runs,
        seed=args.seed,
        engine=args.engine,
        recorder=recorder,
    )
    meta = format_metadata(
        length=args.length, runs=args.runs, engine=args.engine or "scalar"
    )
    _print(
        f"{label}: results vs cache size ({meta})",
        format_series_table("cache", args.sizes, out),
    )
    _finish_recorder(recorder, args)


def cmd_fig9(args):
    _sweep("TOWER", args, "Figure 9 (TOWER)")


def cmd_fig10(args):
    _sweep("ROOF", args, "Figure 10 (ROOF)")


def cmd_fig11(args):
    _sweep("FLOOR", args, "Figure 11 (FLOOR)")


def cmd_fig12(args):
    _sweep("WALK", args, "Figure 12 (WALK)")


def cmd_fig13(args: argparse.Namespace) -> None:
    result = figure13(
        memory_sizes=tuple(args.memories), n_days=args.days, seed=args.seed
    )
    fit = result.fit
    _print(
        f"Figure 13: REAL (fitted AR(1): phi1={fit.phi1:.2f}, "
        f"phi0={fit.phi0:.2f}, sigma={fit.sigma:.2f})",
        format_series_table(
            "memory", args.memories, result.misses, fmt="{:.0f}"
        ),
    )


def cmd_fig14(args: argparse.Namespace) -> None:
    out = figure14(length=args.length, cache_size=args.cache, n_runs=args.runs)
    steady = {
        label: {"R fraction": float(np.mean(series[args.length // 2 :]))}
        for label, series in out.items()
    }
    _print(
        f"Figure 14: cache fraction held by R (cache={args.cache})",
        format_table(steady, row_label="variant", fmt="{:.3f}"),
    )


def cmd_fig15(args: argparse.Namespace) -> None:
    cmp = figure15_16()
    _print(
        "Figures 15/16: h2 surface approximation",
        f"max |err| = {cmp.max_abs_error:.3e}\n"
        f"mean |err| = {cmp.mean_abs_error:.3e}\n"
        f"surface max = {cmp.max_value:.3e}",
    )


def cmd_fig17(args: argparse.Namespace) -> None:
    out = figure17_18(
        length=args.length, cache_size=args.cache, n_runs=args.runs
    )
    for group in ("variance", "lag"):
        steady = {
            label: {"fraction": float(np.mean(series[args.length // 2 :]))}
            for label, series in out[group].items()
        }
        _print(
            f"Figures 17/18 ({group} variants)",
            format_table(steady, row_label="variant", fmt="{:.3f}"),
        )


def cmd_fig19(args: argparse.Namespace) -> None:
    recorder = _make_recorder(args)
    out = figure19(
        delta_ts=tuple(args.deltas),
        length=args.length,
        cache_size=args.cache,
        n_runs=args.runs,
        recorder=recorder,
    )
    _print(
        f"Figure 19: FlowExpect look-ahead (length={args.length}, "
        f"cache={args.cache})",
        format_series_table("deltaT", args.deltas, out),
    )
    _finish_recorder(recorder, args)


def cmd_multi(args: argparse.Namespace) -> None:
    """Run an n-way (Appendix C) topology across policies and engines."""
    from ..policies import make_policy
    from ..sim.engine import spawn_rng
    from ..sim.runner import run_multi_join_experiment
    from .configs import make_multi_config

    recorder = _make_recorder(args)
    config = make_multi_config(args.config)
    trials = []
    for run in range(args.runs):
        rng = spawn_rng(args.seed, run)
        trials.append(
            {
                name: model.sample_path(args.length, rng)
                for name, model in config.models.items()
            }
        )
    rows: dict[str, dict[str, float]] = {}
    engines_used: dict[str, str] = {}
    for pol_name in args.policies:

        def factory(pol_name: str = pol_name):
            if pol_name == "heeb":
                return config.make_heeb(args.cache)
            if pol_name == "rand":
                return make_policy("rand", seed=args.seed)
            return make_policy(pol_name)

        out = run_multi_join_experiment(
            factory,
            trials,
            args.cache,
            config.queries,
            warmup=args.warmup,
            models=config.models,
            engine=args.engine,
            recorder=recorder,
        )
        rows[out.policy_name] = {"mean results": out.mean_results}
        engines_used[out.policy_name] = out.engine_used
    meta = format_metadata(
        cache=args.cache,
        length=args.length,
        runs=args.runs,
        engine=args.engine or "scalar",
    )
    queries = ", ".join(f"{a}⋈{b}" for a, b in config.queries)
    body = format_table(rows, row_label="policy")
    body += "\n\nengines used: " + ", ".join(
        f"{p}={e}" for p, e in engines_used.items()
    )
    _print(f"multi-join {config.name} [{queries}] ({meta})", body)
    _finish_recorder(recorder, args)


def cmd_serve(args: argparse.Namespace) -> None:
    """Run the asyncio serving tier over a seeded or recorded stream."""
    from ..policies import make_policy
    from ..serve import run_replay
    from ..serve.replay import (
        arrivals_from_trace,
        generate_join_stream,
        generate_multi_join_stream,
    )
    from ..sim.engine import ExperimentSpec
    from .configs import MultiJoinConfig

    recorder = _make_recorder(args)
    config = make_config(args.config)
    s_values = None
    if isinstance(config, MultiJoinConfig):
        if args.replay_trace:
            raise SystemExit("--replay-trace is not supported for multi-join configs")
        r_values = generate_multi_join_stream(
            config.models, args.length, args.seed, run=args.run
        )
        spec = ExperimentSpec(
            kind="multi_join",
            cache_size=args.cache,
            queries=tuple(tuple(q) for q in config.queries),
            models=config.models,
            seed=args.seed,
        )
    else:
        if args.replay_trace:
            r_values, s_values = arrivals_from_trace(args.replay_trace)
        else:
            r_values, s_values = generate_join_stream(
                config.r_model, config.s_model, args.length, args.seed, run=args.run
            )
        spec = ExperimentSpec(
            kind="join",
            cache_size=args.cache,
            window=args.window,
            r_model=config.r_model,
            s_model=config.s_model,
            window_oracle=config.window_oracle,
            seed=args.seed,
        )

    def policy_factory():
        from ..policies.base import ScoredPolicy
        from ..sketch import AdmissionFilter

        if args.policy == "heeb":
            policy = config.make_heeb(args.cache)
        elif args.counts != "exact":
            if args.policy not in ("prob", "lfu"):
                raise SystemExit(
                    "--counts sketch/tinylfu applies to prob/lfu only"
                )
            policy = make_policy(
                args.policy, counts=args.counts, sketch_width=args.sketch_width
            )
        else:
            policy = make_policy(args.policy)
        if args.admission:
            if not isinstance(policy, ScoredPolicy):
                raise SystemExit(
                    f"--admission needs a scored policy, not {args.policy!r}"
                )
            policy.with_admission(AdmissionFilter())
        return policy

    summary = run_replay(
        spec,
        policy_factory,
        r_values,
        s_values,
        n_shards=args.shards,
        queue_maxsize=args.queue,
        n_producers=args.producers,
        step_delay=args.step_delay,
        recorder=recorder,
        metrics_host=args.metrics_host,
        metrics_port=args.metrics_port,
        health_path=args.health_out,
    )
    body = "\n".join(f"{k}: {v}" for k, v in summary.as_dict().items())
    _print(
        f"serve: {args.config} / {args.policy} "
        f"(shards={args.shards}, per-shard cache={args.cache})",
        body,
    )
    _finish_recorder(recorder, args)


def cmd_figext(args: argparse.Namespace) -> None:
    """Render a registered extension figure as headless text tables."""
    from .figures import render_figure

    rendered = render_figure(
        args.figure,
        config_names=tuple(args.configs),
        cache_sizes=tuple(args.cache_sizes),
        length=args.length,
        n_runs=args.runs,
        seed=args.seed,
        engine=args.engine,
    )
    _print(f"{args.figure}: cache-size sweep", rendered)


def cmd_all(args: argparse.Namespace) -> None:
    for name in (
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig17",
        "fig19",
    ):
        start = time.perf_counter()
        _DISPATCH[name](_defaults_for(name, args))
        print(f"[{name}: {time.perf_counter() - start:.1f}s]")


def _defaults_for(name: str, base: argparse.Namespace) -> argparse.Namespace:
    """Build a namespace with that command's defaults for `all`."""
    parser = _build_parser()
    ns = parser.parse_args([name])
    ns.seed = base.seed
    return ns


def _add_common(p: argparse.ArgumentParser, length: int, runs: int, cache: int):
    p.add_argument("--length", type=int, default=length)
    p.add_argument("--runs", type=int, default=runs)
    p.add_argument("--cache", type=int, default=cache)
    p.add_argument("--seed", type=int, default=0)


def _add_engine(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--engine",
        choices=("scalar", "batch", "parallel"),
        default=None,
        help="simulation engine (default: scalar; falls back per policy)",
    )


def _add_obs(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--metrics",
        action="store_true",
        help="collect repro.obs counters and print them after the tables",
    )
    p.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL event trace to PATH (implies --metrics); "
        "summarize with `python -m repro.obs PATH`",
    )
    p.add_argument(
        "--progress",
        action="store_true",
        help="render a trials-done/ETA progress line on stderr "
        "(driven by the recorder; off by default)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig6", help="random-walk h_R curves")
    p.add_argument("--alpha", type=float, default=10.0)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("fig7", help="noise pdfs")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("fig8", help="headline comparison")
    _add_common(p, length=600, runs=3, cache=10)
    p.add_argument("--lookahead", type=int, default=5)
    p.add_argument("--no-flowexpect", action="store_true")
    _add_engine(p)
    _add_obs(p)

    for name in ("fig9", "fig10", "fig11", "fig12"):
        p = sub.add_parser(name, help=f"cache-size sweep ({name})")
        _add_common(p, length=1200, runs=3, cache=10)
        p.add_argument(
            "--sizes", type=int, nargs="+", default=[1, 5, 10, 20, 30, 50]
        )
        _add_engine(p)
        _add_obs(p)

    p = sub.add_parser("fig13", help="REAL caching")
    p.add_argument(
        "--memories", type=int, nargs="+", default=[10, 50, 100, 200, 300]
    )
    p.add_argument("--days", type=int, default=3650)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("fig14", help="memory allocation")
    _add_common(p, length=2500, runs=3, cache=10)

    p = sub.add_parser("fig15", help="h2 surface approximation")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("fig17", help="occupancy variants")
    _add_common(p, length=2000, runs=3, cache=10)

    p = sub.add_parser("fig19", help="FlowExpect look-ahead sweep")
    _add_common(p, length=400, runs=2, cache=10)
    p.add_argument("--deltas", type=int, nargs="+", default=[1, 2, 3, 5, 7, 10])
    _add_obs(p)

    p = sub.add_parser(
        "multi",
        help="n-way multi-join topology comparison (Appendix C)",
    )
    _add_common(p, length=800, runs=3, cache=10)
    p.add_argument(
        "--config",
        default="CHAIN3",
        help="multi-join topology name (CHAIN3, STAR5; default CHAIN3)",
    )
    p.add_argument(
        "--policies",
        nargs="+",
        default=["rand", "lru", "lfu", "prob", "trie", "heeb"],
        help="policy registry names ('heeb' uses the topology's "
        "Appendix-C strategy)",
    )
    p.add_argument("--warmup", type=int, default=0)
    _add_engine(p)
    _add_obs(p)

    p = sub.add_parser(
        "serve",
        help="push a stream through the asyncio serving tier (repro.serve)",
    )
    _add_common(p, length=2000, runs=1, cache=10)
    p.add_argument(
        "--config",
        default="FLOOR",
        help="synthetic scenario providing the stream models (default FLOOR)",
    )
    p.add_argument(
        "--policy",
        default="lru",
        help="replacement policy name (registry name, or 'heeb' for the "
        "scenario's HEEB strategy)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=1,
        help="cache shards; 1 = simulator-parity mode (default 1)",
    )
    p.add_argument(
        "--queue",
        type=int,
        default=256,
        help="per-shard bounded queue size (backpressure threshold)",
    )
    p.add_argument(
        "--producers",
        type=int,
        default=1,
        help="concurrent producer tasks feeding the server (default 1)",
    )
    p.add_argument(
        "--step-delay",
        type=float,
        default=0.0,
        help="artificial seconds slept per applied event (slow-consumer demo)",
    )
    p.add_argument("--window", type=int, default=None)
    p.add_argument(
        "--run",
        type=int,
        default=0,
        help="trial index for seed spawning (matches simulator run k)",
    )
    p.add_argument(
        "--replay-trace",
        metavar="PATH",
        default=None,
        help="replay arrivals recorded in a repro.obs trace file instead "
        "of sampling a seeded stream",
    )
    p.add_argument(
        "--counts",
        choices=("exact", "sketch", "tinylfu"),
        default="exact",
        help="frequency back-end for prob/lfu: exact Counter (default), "
        "count-min sketch, or TinyLFU (doorkeeper + halving)",
    )
    p.add_argument(
        "--sketch-width",
        type=int,
        default=2048,
        help="count-min width per row when --counts is a sketch mode",
    )
    p.add_argument(
        "--admission",
        action="store_true",
        help="attach the bloom admission front-end (scored policies only): "
        "first-time values below the eviction-cutoff EMA are rejected",
    )
    p.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve Prometheus /metrics and JSON /health on this port "
        "for the duration of the replay (0 = ephemeral); watch it with "
        "`python -m repro.obs top --url http://HOST:PORT`",
    )
    p.add_argument(
        "--metrics-host",
        default="127.0.0.1",
        help="bind address for --metrics-port (default 127.0.0.1)",
    )
    p.add_argument(
        "--health-out",
        metavar="PATH",
        default=None,
        help="write the final /health JSON document here (offline "
        "snapshot for `repro.obs top --snapshot`)",
    )
    _add_obs(p)

    p = sub.add_parser(
        "figext",
        help="registered extension figures (headless text tables)",
    )
    p.add_argument(
        "--figure",
        default="ext-multi-sweep",
        help="registered figure name (see repro.experiments.figures)",
    )
    p.add_argument(
        "--configs",
        nargs="+",
        default=["CHAIN3", "STAR5"],
        help="multi-join topologies to sweep",
    )
    p.add_argument(
        "--cache-sizes",
        type=int,
        nargs="+",
        default=[4, 8, 12],
        help="cache sizes swept per topology",
    )
    p.add_argument("--length", type=int, default=300)
    p.add_argument("--runs", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    _add_engine(p)

    p = sub.add_parser("all", help="run everything at bench scale")
    p.add_argument("--seed", type=int, default=0)

    return parser


_DISPATCH = {
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "fig8": cmd_fig8,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
    "fig11": cmd_fig11,
    "fig12": cmd_fig12,
    "fig13": cmd_fig13,
    "fig14": cmd_fig14,
    "fig15": cmd_fig15,
    "fig17": cmd_fig17,
    "fig19": cmd_fig19,
    "multi": cmd_multi,
    "serve": cmd_serve,
    "figext": cmd_figext,
    "all": cmd_all,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    _DISPATCH[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
