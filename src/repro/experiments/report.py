"""Plain-text rendering of experiment results, matching the paper's rows."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "format_table",
    "format_series_table",
    "format_curve",
    "format_metadata",
]


def format_metadata(**fields) -> str:
    """Render run metadata as ``key=value`` pairs, skipping ``None``.

    Used by the CLI to annotate figure titles with the experiment
    parameters and the simulation engine that produced them.
    """
    return ", ".join(
        f"{key}={value}" for key, value in fields.items() if value is not None
    )


def format_table(
    rows: Mapping[str, Mapping[str, float]],
    row_label: str = "config",
    fmt: str = "{:.1f}",
) -> str:
    """Render ``{row: {column: value}}`` as an aligned ASCII table."""
    columns: list[str] = []
    for cols in rows.values():
        for c in cols:
            if c not in columns:
                columns.append(c)
    header = [row_label] + columns
    body = []
    for row_name, cols in rows.items():
        body.append(
            [row_name]
            + [fmt.format(cols[c]) if c in cols else "-" for c in columns]
        )
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = [line(header), line(["-" * w for w in widths])]
    out.extend(line(r) for r in body)
    return "\n".join(out)


def format_series_table(
    x_label: str,
    x_values: Sequence,
    series: Mapping[str, Sequence[float]],
    fmt: str = "{:.1f}",
) -> str:
    """Render ``{name: [y per x]}`` with one row per x value."""
    rows = {}
    for i, x in enumerate(x_values):
        rows[str(x)] = {name: values[i] for name, values in series.items()}
    return format_table(rows, row_label=x_label, fmt=fmt)


def format_curve(
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    max_points: int = 15,
    fmt: str = "{:.4f}",
) -> str:
    """Render a (possibly downsampled) curve as two aligned columns."""
    xs = list(xs)
    ys = list(ys)
    if len(xs) > max_points:
        idx = np.linspace(0, len(xs) - 1, max_points).round().astype(int)
        xs = [xs[i] for i in idx]
        ys = [ys[i] for i in idx]
    rows = {str(x): {y_label: float(y)} for x, y in zip(xs, ys)}
    return format_table(rows, row_label=x_label, fmt=fmt)
