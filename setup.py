"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so legacy
(``--no-use-pep517``) editable installs work in offline environments
that lack the ``wheel`` package.
"""

from setuptools import setup

setup()
