#!/usr/bin/env python
"""Docstring-coverage floor for the public surface, stdlib-only.

Walks the given files/directories with :mod:`ast` and measures the
fraction of documentable definitions that carry a docstring:

* modules;
* public classes (name not starting with ``_``);
* public functions and methods (name not starting with ``_``), where
  dunder methods other than ``__init__`` are skipped — their contracts
  are the language's, not ours.

Nested (closure) functions are not counted: they are implementation
detail, not API surface.  The tool exists so CI can enforce a floor
without installing a third-party coverage package; usage::

    python tools/docstring_coverage.py --fail-under 80 src/repro/sim ...

Exit status is 1 when overall coverage is below the floor, and the
report lists every undocumented definition so the gap is actionable.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

__all__ = ["measure_file", "main"]


def _documentable(node: ast.AST) -> bool:
    """Whether a class/function definition counts toward coverage."""
    name = node.name  # type: ignore[attr-defined]
    if isinstance(node, ast.ClassDef):
        return not name.startswith("_")
    if name == "__init__":
        return True
    return not name.startswith("_")


def measure_file(path: Path) -> tuple[int, int, list[str]]:
    """Return ``(documented, total, missing)`` for one Python file.

    ``missing`` holds ``name:line`` labels of undocumented definitions,
    with ``<module>`` for a missing module docstring.
    """
    tree = ast.parse(path.read_text(encoding="utf-8"))
    total = 1
    documented = int(ast.get_docstring(tree) is not None)
    missing = [] if documented else ["<module>:1"]

    # Walk module and class bodies only: functions nested inside
    # functions are closures, not API surface.
    stack: list[tuple[ast.AST, str]] = [(tree, "")]
    while stack:
        scope, prefix = stack.pop()
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, ast.ClassDef):
                label = f"{prefix}{node.name}"
                if _documentable(node):
                    total += 1
                    if ast.get_docstring(node) is not None:
                        documented += 1
                    else:
                        missing.append(f"{label}:{node.lineno}")
                stack.append((node, label + "."))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not _documentable(node):
                    continue
                total += 1
                if ast.get_docstring(node) is not None:
                    documented += 1
                else:
                    missing.append(f"{prefix}{node.name}:{node.lineno}")
    return documented, total, missing


def _iter_files(targets: list[Path]) -> list[Path]:
    files: list[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(sorted(target.rglob("*.py")))
        else:
            files.append(target)
    return files


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("targets", nargs="+", type=Path)
    parser.add_argument(
        "--fail-under",
        type=float,
        default=80.0,
        help="minimum overall coverage percentage (default 80)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="list every undocumented definition, not just the summary",
    )
    args = parser.parse_args(argv)

    grand_documented = grand_total = 0
    gaps: list[tuple[Path, list[str]]] = []
    for path in _iter_files(args.targets):
        documented, total, missing = measure_file(path)
        grand_documented += documented
        grand_total += total
        if missing:
            gaps.append((path, missing))

    coverage = 100.0 * grand_documented / grand_total if grand_total else 100.0
    if args.verbose or coverage < args.fail_under:
        for path, missing in gaps:
            for label in missing:
                print(f"{path}: undocumented {label}")
    print(
        f"docstring coverage: {grand_documented}/{grand_total} "
        f"({coverage:.1f}%), floor {args.fail_under:.1f}%"
    )
    if coverage < args.fail_under:
        print("FAILED: coverage below the floor")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
