#!/usr/bin/env python
"""Markdown link checker for the repo docs, stdlib-only.

Scans the given markdown files for inline links and reference
definitions and verifies that every *local* target exists relative to
the file containing it (anchors are stripped; ``http(s)``/``mailto``
URLs are not fetched — CI must not depend on the network).  Bare code
spans and autolinks are ignored.  Usage::

    python tools/check_links.py README.md docs/*.md

Exits 1 listing every broken link, so the docs index stays navigable as
files move.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

__all__ = ["broken_links", "main"]

#: Inline ``[text](target)`` links; images share the syntax via ``!``.
_INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Reference definitions ``[label]: target``.
_REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
#: Fenced code blocks, stripped before link extraction.
_FENCE = re.compile(r"```.*?```", re.DOTALL)

_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def broken_links(path: Path) -> list[str]:
    """Local link targets in ``path`` that do not resolve to a file."""
    text = _FENCE.sub("", path.read_text(encoding="utf-8"))
    targets = _INLINE.findall(text) + _REFDEF.findall(text)
    bad = []
    for target in targets:
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        local = target.split("#", 1)[0]
        if not local:
            continue
        if not (path.parent / local).exists():
            bad.append(target)
    return bad


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", type=Path)
    args = parser.parse_args(argv)

    n_checked = 0
    failures = 0
    for path in args.files:
        n_checked += 1
        for target in broken_links(path):
            print(f"{path}: broken link -> {target}")
            failures += 1
    print(f"checked {n_checked} files, {failures} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
