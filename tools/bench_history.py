#!/usr/bin/env python
"""Benchmark history: append perf-harness runs, gate on regressions.

``benchmarks/perf_harness.py`` overwrites ``BENCH_batch.json`` on every
run, so the repo only ever remembers the *latest* numbers — a slow
creep (or a one-commit cliff) in engine throughput or FlowExpect
per-step latency is invisible until someone re-reads old commits.  This
tool gives the harness a memory:

* **append** — the harness calls :func:`entry_from_report` /
  :func:`append_entry` after writing its report, adding one JSONL line
  to ``BENCH_history.jsonl`` with a timestamp, the current git SHA, an
  environment + workload fingerprint, and the headline metrics
  (aggregate engine speedups and throughputs, FlowExpect ms/step and
  fast-path speedup).
* **check** — ``python tools/bench_history.py --check`` compares the
  most recent run against the *rolling median* of prior runs with the
  **same fingerprint** (identical environment and workload — numbers
  from a different machine, worker count, or trial count are never
  compared).  A higher-is-better metric fails when it drops below
  ``(1 - tolerance) x median``; a lower-is-better metric (``*_ms_per_step``,
  ``*_seconds``) fails when it rises above ``(1 + tolerance) x median``.
  With fewer than ``--min-runs`` comparable runs the check passes with
  a note — a fresh environment has no baseline to regress from.

The history file is read tolerantly: a truncated final line (killed
run, full disk) is reported and skipped, mirroring the trace reader's
``strict=False`` contract.  Stdlib-only, so CI can run it before any
project dependency is importable.

Usage::

    python tools/bench_history.py                  # summarize history
    python tools/bench_history.py --check          # gate (exit 1 = regression)
        [--history BENCH_history.jsonl] [--tolerance 0.2] [--min-runs 2]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path
from statistics import median
from typing import Any, Mapping, Optional, Sequence

__all__ = [
    "entry_from_report",
    "append_entry",
    "load_history",
    "fingerprint_key",
    "check",
    "main",
]

DEFAULT_HISTORY = Path(__file__).resolve().parent.parent / "BENCH_history.jsonl"
DEFAULT_TOLERANCE = 0.2
DEFAULT_MIN_RUNS = 2

#: Metrics where a *smaller* value is better.  Anything not matching is
#: treated as higher-is-better (speedups, trials/sec, hit rates).
_LOWER_BETTER_SUFFIXES = (
    "_ms_per_step",
    "_seconds",
    "_overhead_pct",
    # Rising enqueue-time queue depth means the serving tier's consumer
    # fell behind its producers — a latent step-function slowdown even
    # when raw throughput still looks fine.
    "_queue_depth",
    # Sketch front-ends: a growing tracemalloc peak means the bounded-
    # memory contract is eroding, and a growing hit-rate delta means the
    # approximation is costing more accuracy vs exact counts.
    "_mem_mb",
    "_hit_rate_delta",
    # Wall-clock latency metrics (the *_ms naming convention): the serve
    # decide-span p99 gates here.
    "_ms",
)

#: Environment keys that participate in the fingerprint.  Worker count
#: is included deliberately: parallel throughput on 1 worker and on 8
#: are different experiments.
_ENV_KEYS = ("python", "numpy", "machine", "cpu_count", "parallel_workers")


def git_sha(repo: Optional[Path] = None) -> str:
    """Short git SHA of ``repo`` (default: this file's repo), or ``unknown``."""
    cwd = repo if repo is not None else Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def entry_from_report(
    report: Mapping[str, Any],
    ts: Optional[float] = None,
    sha: Optional[str] = None,
) -> dict:
    """Flatten one ``BENCH_batch.json``-style report into a history entry.

    Pulls the headline metrics out of ``aggregate`` (engine throughputs
    and speedups), ``flowexpect`` (per-step latency, fast-path speedup,
    memo hit rate, ``fe_`` prefix), ``batch_coverage`` (per-family
    adapter speedups, ``batchcov_`` prefix), ``native`` (compiled-kernel
    speedup and per-step latency, ``native_`` prefix), ``serve``
    (serving-tier ingestion
    throughput and queue-depth telemetry, ``serve_`` prefix),
    ``multi_join`` (multi-join batch speedup and serve throughput,
    ``multi_`` prefix), and ``sketch`` (bounded-memory peak and
    exact-vs-sketch hit-rate delta, ``sketch_`` prefix) so the sections
    cannot collide.  Sections absent
    from the report are simply absent from the metrics — a
    FlowExpect-only run still produces a checkable entry.
    """
    metrics: dict[str, float] = {}
    aggregate = report.get("aggregate") or {}
    for key in (
        "scalar_trials_per_sec",
        "batch_trials_per_sec",
        "parallel_trials_per_sec",
        "batch_speedup",
        "parallel_speedup",
    ):
        value = aggregate.get(key)
        if isinstance(value, (int, float)):
            metrics[key] = float(value)
    flowexpect = report.get("flowexpect") or {}
    for key in (
        "fast_ms_per_step",
        "reference_ms_per_step",
        "fast_speedup",
        "prob_table_hit_rate",
    ):
        value = flowexpect.get(key)
        if isinstance(value, (int, float)):
            metrics[f"fe_{key}"] = float(value)

    batchcov = report.get("batch_coverage") or {}
    for family, entry in (batchcov.get("families") or {}).items():
        value = (entry or {}).get("batch_speedup")
        if isinstance(value, (int, float)):
            metrics[f"batchcov_{family}_speedup"] = float(value)

    native = report.get("native") or {}
    for key in (
        "native_speedup",
        "native_ms_per_step",
        "reference_ms_per_step",
    ):
        value = native.get(key)
        if isinstance(value, (int, float)):
            metrics[f"native_{key}"] = float(value)

    serve = report.get("serve") or {}
    for key in (
        "tuples_per_sec",
        "p90_queue_depth",
        "p99_queue_depth",
        "max_queue_depth",
        "p99_ms",
    ):
        value = serve.get(key)
        if isinstance(value, (int, float)):
            metrics[f"serve_{key}"] = float(value)

    multi = report.get("multi_join") or {}
    for key in (
        "batch_speedup",
        "scalar_trials_per_sec",
        "batch_trials_per_sec",
        "serve_tuples_per_sec",
    ):
        value = multi.get(key)
        if isinstance(value, (int, float)):
            metrics[f"multi_{key}"] = float(value)

    sketch = report.get("sketch") or {}
    for key in (
        "mem_mb",
        "hit_rate_delta",
        "exact_hit_rate",
        "sketch_hit_rate",
        "steps_per_sec",
    ):
        value = sketch.get(key)
        if isinstance(value, (int, float)):
            if key == "hit_rate_delta":
                # Gate math is multiplicative around the median, which
                # assumes non-negative magnitudes; a negative delta
                # (sketch *beat* exact) gates as zero — the raw value
                # stays in the report for inspection.
                value = max(0.0, float(value))
            metrics[f"sketch_{key}"] = float(value)

    workload = dict(report.get("workload") or {})
    # FlowExpect bench parameters are part of the workload identity too:
    # fe_ms_per_step at lookahead 8 is not comparable to lookahead 4.
    for key in ("length", "lookahead", "cache_size"):
        if key in flowexpect:
            workload[f"fe_{key}"] = flowexpect[key]
    # Batch-coverage and native bench shapes: per-family speedups are
    # only comparable at the same trial counts and stream lengths (the
    # memo-sharing adapters scale with the trial count by design).
    for key in ("length", "trials", "fe_length", "fe_trials"):
        if key in batchcov:
            workload[f"batchcov_{key}"] = batchcov[key]
    for key in ("length", "lookahead", "trials", "native_available"):
        if key in native:
            workload[f"native_{key}"] = native[key]
    # Likewise the serve bench: throughput at 4 shards on a 2000-step
    # stream is not comparable to other shapes.
    for key in ("length", "n_shards", "queue_maxsize"):
        if key in serve:
            workload[f"serve_{key}"] = serve[key]
    # And the multi-join bench: the topology and trial count define the
    # experiment just as much as the machine does.
    for key in ("config", "length", "trials", "serve_length", "serve_n_shards"):
        if key in multi:
            workload[f"multi_{key}"] = multi[key]
    # Sketch bench shape: memory peaks and hit-rate deltas are only
    # comparable at the same cache size / stream length / value mix.
    for key in (
        "cache_size",
        "length",
        "head_values",
        "tail_fraction",
        "sketch_width",
    ):
        if key in sketch:
            workload[f"sketch_{key}"] = sketch[key]

    env_in = report.get("environment") or {}
    env = {k: env_in.get(k) for k in _ENV_KEYS if k in env_in}

    return {
        "ts": round(ts if ts is not None else time.time(), 3),
        "git_sha": sha if sha is not None else git_sha(),
        "env": env,
        "workload": workload,
        "metrics": metrics,
    }


def append_entry(path: Path, entry: Mapping[str, Any]) -> None:
    """Append one history entry as a JSON line (creating the file)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")


def load_history(
    path: Path, bad_lines: Optional[list[str]] = None
) -> list[dict]:
    """Read history entries, skipping corrupt/truncated lines.

    ``bad_lines`` (when given) receives ``"lineno: reason"`` strings for
    every skipped line, so callers can surface them as warnings.
    """
    entries: list[dict] = []
    path = Path(path)
    if not path.exists():
        return entries
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                if bad_lines is not None:
                    bad_lines.append(f"{lineno}: {exc}")
                continue
            if isinstance(entry, dict) and isinstance(
                entry.get("metrics"), dict
            ):
                entries.append(entry)
            elif bad_lines is not None:
                bad_lines.append(f"{lineno}: not a history entry")
    return entries


def fingerprint_key(entry: Mapping[str, Any]) -> str:
    """Canonical environment+workload identity of one entry.

    Two entries are comparable iff their keys match exactly; the git
    SHA and timestamp are deliberately excluded — those are what we
    compare *across*.
    """
    return json.dumps(
        {
            "env": entry.get("env", {}),
            "workload": entry.get("workload", {}),
        },
        sort_keys=True,
    )


def _lower_is_better(metric: str) -> bool:
    return metric.endswith(_LOWER_BETTER_SUFFIXES)


def check(
    entries: Sequence[Mapping[str, Any]],
    tolerance: float = DEFAULT_TOLERANCE,
    min_runs: int = DEFAULT_MIN_RUNS,
) -> tuple[bool, list[str]]:
    """Gate the latest entry against the median of comparable priors.

    Returns ``(ok, messages)``.  ``ok`` is ``True`` when no metric of
    the latest run regressed beyond ``tolerance`` relative to the
    rolling median of earlier same-fingerprint runs — or when there are
    fewer than ``min_runs`` comparable runs in total (nothing to gate
    against yet; the messages say so).
    """
    messages: list[str] = []
    if not entries:
        return True, ["history is empty — nothing to check"]
    latest = entries[-1]
    key = fingerprint_key(latest)
    priors = [e for e in entries[:-1] if fingerprint_key(e) == key]
    comparable = len(priors) + 1
    messages.append(
        f"latest run {latest.get('git_sha', '?')} @ {latest.get('ts', '?')}: "
        f"{comparable} comparable run(s) with this environment+workload "
        f"fingerprint ({len(entries)} total)"
    )
    if comparable < min_runs:
        messages.append(
            f"PASS (baseline building): fewer than {min_runs} comparable "
            f"runs — no median to gate against yet"
        )
        return True, messages

    ok = True
    for metric, value in sorted(latest.get("metrics", {}).items()):
        prior_values = [
            float(e["metrics"][metric])
            for e in priors
            if isinstance(e.get("metrics", {}).get(metric), (int, float))
        ]
        if not prior_values:
            messages.append(f"  {metric}: {value:g} (no prior values, skipped)")
            continue
        base = median(prior_values)
        lower = _lower_is_better(metric)
        if lower:
            limit = base * (1.0 + tolerance)
            failed = value > limit
            direction = "<="
        else:
            limit = base * (1.0 - tolerance)
            failed = value < limit
            direction = ">="
        verdict = "REGRESSION" if failed else "ok"
        messages.append(
            f"  {metric}: {value:g} vs median {base:g} of "
            f"{len(prior_values)} prior run(s) "
            f"(require {direction} {limit:g}) — {verdict}"
        )
        if failed:
            ok = False
    messages.append(
        "PASS: within tolerance of the rolling median"
        if ok
        else f"FAIL: regression beyond {tolerance:.0%} tolerance"
    )
    return ok, messages


def _summarize(entries: Sequence[Mapping[str, Any]]) -> list[str]:
    """One line per recorded run, oldest first."""
    if not entries:
        return ["history is empty"]
    lines = [f"{len(entries)} recorded run(s):"]
    for e in entries:
        metrics = e.get("metrics", {})
        headline = ", ".join(
            f"{k}={metrics[k]:g}"
            for k in ("batch_speedup", "fe_fast_ms_per_step")
            if k in metrics
        )
        lines.append(
            f"  {e.get('git_sha', '?'):>9s}  ts={e.get('ts', '?')}  "
            f"{headline or '(no headline metrics)'}"
        )
    return lines


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: summarize the history, or gate with ``--check``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--history",
        type=Path,
        default=DEFAULT_HISTORY,
        help="history file (default: repo-root BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed relative regression vs the rolling median "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--min-runs",
        type=int,
        default=DEFAULT_MIN_RUNS,
        help="minimum comparable runs before the gate is live "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate the latest run; exit 1 on regression",
    )
    args = parser.parse_args(argv)

    bad: list[str] = []
    entries = load_history(args.history, bad_lines=bad)
    for entry in bad:
        print(
            f"warning: {args.history}:{entry} (line skipped)",
            file=sys.stderr,
        )

    if not args.check:
        print("\n".join(_summarize(entries)))
        return 0

    ok, messages = check(
        entries, tolerance=args.tolerance, min_runs=args.min_runs
    )
    print("\n".join(messages))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
